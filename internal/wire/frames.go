package wire

// Mutation and replication frames (PR 8). DynCreate/Mutate are the
// binary twins of POST /v1/dyn and /v1/dyn/{id}/mutate, added so
// cluster nodes can proxy dyn traffic to shard owners over the same
// protocol clients speak. RepSnapshot/RepRecords/RepAck are the
// log-shipping replication conversation: the owner ships a full state
// blob (internal/persist's snapshot codec, opaque here) or the WAL
// records past the follower's apply cursor, and the follower acks with
// the cursor it reached — or asks for a resync when it sees an epoch
// gap. HandbackOffer/HandbackGrant are the rejoin reconciliation
// conversation: a restarted ring owner claims a shard back from the
// successor that absorbed it, and the successor answers with a fence
// epoch plus the diff (tail or snapshot) that reaches it. All
// server→client frames lead with the request ID, so one pipelined
// connection multiplexes every conversation kind.

import (
	"encoding/binary"
	"math"
)

// Mutation opcodes (shared with the Mutated frame and, by value, with
// internal/persist's record types).
const (
	// OpInsert inserts a leaf under Arg (the parent vertex).
	OpInsert = 1
	// OpDelete deletes leaf Arg.
	OpDelete = 2
)

// Replication ack codes.
const (
	// AckOK: the follower applied everything shipped; Cursor is its new
	// apply cursor.
	AckOK = 0
	// AckNeedSync: the shipped records leave an epoch gap (or address an
	// unknown shard); the owner must ship a RepSnapshot first. Cursor is
	// the follower's current cursor.
	AckNeedSync = 1
	// AckRefused: the follower rejected the shipment (apply divergence,
	// storage failure); Msg says why. The owner treats the follower as
	// failed.
	AckRefused = 2
)

// DynCreate asks the server to create a mutable shard from Parents.
// ShardID "" lets the server assign the id (the single-node behavior);
// a cluster owner receives the id its proxy already routed on.
type DynCreate struct {
	ID      uint64
	ShardID string
	Parents []int
	// Epsilon is the drift budget (0 means the server default).
	Epsilon float64
	// Backend overrides the serving backend ("" means the server
	// default).
	Backend string
}

// DynCreated answers a DynCreate.
type DynCreated struct {
	ID      uint64
	ShardID string
	N       int
	Backend string
}

// Mutate inserts or deletes a leaf of a mutable shard: Op is OpInsert
// (Arg = parent vertex) or OpDelete (Arg = leaf).
type Mutate struct {
	ID      uint64
	ShardID string
	Op      uint8
	Arg     int
}

// Mutated answers a Mutate: Vertex is the inserted leaf (OpInsert),
// Moved the vertex renamed into the hole (OpDelete), Epoch and N the
// shard's state after the mutation.
type Mutated struct {
	ID     uint64
	Vertex int
	Moved  int
	Epoch  uint64
	N      int
}

// RepSnapshot resets a follower's replica of ShardID to Blob, a full
// dyn shard state in internal/persist's snapshot encoding (opaque at
// the wire layer).
type RepSnapshot struct {
	ID      uint64
	ShardID string
	Blob    []byte
}

// RepRecord is one shipped WAL mutation record: Type is OpInsert or
// OpDelete, Epoch the shard epoch the mutation produced, Arg its
// argument and Result its result (the inserted vertex / moved vertex) —
// the follower verifies its replay reproduces Result exactly.
type RepRecord struct {
	Type   uint8
	Epoch  uint64
	Arg    int64
	Result int64
}

// RepRecords ships the WAL records of ShardID past the follower's
// cursor, in epoch order.
type RepRecords struct {
	ID      uint64
	ShardID string
	Recs    []RepRecord
}

// RepAck answers a RepSnapshot or RepRecords with the follower's apply
// cursor (the last epoch it holds) and an ack code.
type RepAck struct {
	ID      uint64
	ShardID string
	Cursor  uint64
	Code    uint8
	Msg     string
}

// Handback offer phases. A rejoined owner first probes the successor
// (no state changes anywhere), then claims: the claim is the fencing
// step, after which the successor stops serving the shard.
const (
	// HandbackProbe asks whether the peer currently serves the shard and
	// at what cursor. Carries no records; changes no state.
	HandbackProbe = 1
	// HandbackClaim takes ownership: the successor quiesces the shard,
	// stamps the fence epoch, releases the shard from serving, and
	// grants the diff that brings the rejoiner's cursor to the fence.
	HandbackClaim = 2
)

// Handback grant modes.
const (
	// GrantRetry: the claim cannot be honored right now; Msg says why.
	// The rejoiner backs off and re-offers.
	GrantRetry = 0
	// GrantOwn: the peer neither serves the shard nor holds state past
	// the offered cursor — the rejoiner's own copy is the best there is.
	GrantOwn = 1
	// GrantServing (probe answer only): the peer serves the shard;
	// Fence reports its current epoch. The rejoiner proxies to it until
	// its claim is granted.
	GrantServing = 2
	// GrantTail (claim answer): Recs carry the records from the offered
	// cursor up to Fence; the peer has fenced and released the shard.
	GrantTail = 3
	// GrantSnapshot (claim answer): Blob is a full state snapshot at
	// Fence (the offered copy diverged or the tail was compacted away);
	// the peer has fenced and released the shard.
	GrantSnapshot = 4
)

// HandbackOffer is a restarted ring owner's request to take a shard
// back from the successor that absorbed it (rejoin reconciliation).
// Cursor is the rejoiner's apply cursor; a claim also ships the
// rejoiner's recent WAL records so the successor can check the two
// histories agree below the fence before granting a cheap tail.
type HandbackOffer struct {
	ID      uint64
	ShardID string
	Phase   uint8
	Cursor  uint64
	Recs    []RepRecord
}

// HandbackGrant answers a HandbackOffer. Fence is the epoch the
// successor stopped at (no applies past it are accepted once granted);
// Mode says how the rejoiner reaches the fence — see the Grant*
// constants.
type HandbackGrant struct {
	ID      uint64
	ShardID string
	Mode    uint8
	Fence   uint64
	Recs    []RepRecord
	Blob    []byte
	Msg     string
}

// AppendDynCreate appends c as one frame to dst.
func AppendDynCreate(dst []byte, c *DynCreate) []byte {
	return appendFrame(dst, FrameDynCreate, func(b []byte) []byte {
		b = binary.AppendUvarint(b, c.ID)
		b = appendStr(b, c.ShardID)
		b = binary.AppendUvarint(b, uint64(len(c.Parents)))
		for _, p := range c.Parents {
			b = binary.AppendVarint(b, int64(p))
		}
		b = binary.AppendUvarint(b, math.Float64bits(c.Epsilon))
		b = appendStr(b, c.Backend)
		return b
	})
}

// Decode decodes the payload of a dyn-create frame into c.
//
//spatialvet:errclass
func (c *DynCreate) Decode(payload []byte) error {
	d := decoder{buf: payload}
	var err error
	if c.ID, err = d.uvarint(); err != nil {
		return err
	}
	if c.ShardID, err = d.str(maxNameLen); err != nil {
		return err
	}
	n, err := d.count("vertex")
	if err != nil {
		return err
	}
	c.Parents = growInts(c.Parents[:0], n)
	for i := range c.Parents {
		p, err := d.varint()
		if err != nil {
			return err
		}
		c.Parents[i] = int(p)
	}
	bits, err := d.uvarint()
	if err != nil {
		return err
	}
	c.Epsilon = math.Float64frombits(bits)
	if c.Backend, err = d.str(maxNameLen); err != nil {
		return err
	}
	return d.drained()
}

// AppendDynCreated appends c as one frame to dst.
func AppendDynCreated(dst []byte, c *DynCreated) []byte {
	return appendFrame(dst, FrameDynCreated, func(b []byte) []byte {
		b = binary.AppendUvarint(b, c.ID)
		b = appendStr(b, c.ShardID)
		b = binary.AppendUvarint(b, uint64(c.N))
		b = appendStr(b, c.Backend)
		return b
	})
}

// Decode decodes the payload of a dyn-created frame into c.
//
//spatialvet:errclass
func (c *DynCreated) Decode(payload []byte) error {
	d := decoder{buf: payload}
	var err error
	if c.ID, err = d.uvarint(); err != nil {
		return err
	}
	if c.ShardID, err = d.str(maxNameLen); err != nil {
		return err
	}
	n, err := d.uvarint()
	if err != nil {
		return err
	}
	c.N = int(n)
	if c.Backend, err = d.str(maxNameLen); err != nil {
		return err
	}
	return d.drained()
}

// AppendMutate appends m as one frame to dst.
func AppendMutate(dst []byte, m *Mutate) []byte {
	return appendFrame(dst, FrameMutate, func(b []byte) []byte {
		b = binary.AppendUvarint(b, m.ID)
		b = appendStr(b, m.ShardID)
		b = append(b, m.Op)
		b = binary.AppendVarint(b, int64(m.Arg))
		return b
	})
}

// Decode decodes the payload of a mutate frame into m.
//
//spatialvet:errclass
func (m *Mutate) Decode(payload []byte) error {
	d := decoder{buf: payload}
	var err error
	if m.ID, err = d.uvarint(); err != nil {
		return err
	}
	if m.ShardID, err = d.str(maxNameLen); err != nil {
		return err
	}
	if m.Op, err = d.byte(); err != nil {
		return err
	}
	if m.Op != OpInsert && m.Op != OpDelete {
		return corruptf("unknown mutation op %d", m.Op)
	}
	arg, err := d.varint()
	if err != nil {
		return err
	}
	m.Arg = int(arg)
	return d.drained()
}

// AppendMutated appends m as one frame to dst.
func AppendMutated(dst []byte, m *Mutated) []byte {
	return appendFrame(dst, FrameMutated, func(b []byte) []byte {
		b = binary.AppendUvarint(b, m.ID)
		b = binary.AppendVarint(b, int64(m.Vertex))
		b = binary.AppendVarint(b, int64(m.Moved))
		b = binary.AppendUvarint(b, m.Epoch)
		b = binary.AppendUvarint(b, uint64(m.N))
		return b
	})
}

// Decode decodes the payload of a mutated frame into m.
//
//spatialvet:errclass
func (m *Mutated) Decode(payload []byte) error {
	d := decoder{buf: payload}
	var err error
	if m.ID, err = d.uvarint(); err != nil {
		return err
	}
	v, err := d.varint()
	if err != nil {
		return err
	}
	m.Vertex = int(v)
	if v, err = d.varint(); err != nil {
		return err
	}
	m.Moved = int(v)
	if m.Epoch, err = d.uvarint(); err != nil {
		return err
	}
	n, err := d.uvarint()
	if err != nil {
		return err
	}
	m.N = int(n)
	return d.drained()
}

// AppendRepSnapshot appends s as one frame to dst.
func AppendRepSnapshot(dst []byte, s *RepSnapshot) []byte {
	return appendFrame(dst, FrameRepSnapshot, func(b []byte) []byte {
		b = binary.AppendUvarint(b, s.ID)
		b = appendStr(b, s.ShardID)
		b = binary.AppendUvarint(b, uint64(len(s.Blob)))
		b = append(b, s.Blob...)
		return b
	})
}

// Decode decodes the payload of a rep-snapshot frame into s. The blob
// is freshly allocated: it outlives the reader's frame buffer.
//
//spatialvet:errclass
func (s *RepSnapshot) Decode(payload []byte) error {
	d := decoder{buf: payload}
	var err error
	if s.ID, err = d.uvarint(); err != nil {
		return err
	}
	if s.ShardID, err = d.str(maxNameLen); err != nil {
		return err
	}
	n, err := d.count("blob byte")
	if err != nil {
		return err
	}
	s.Blob = append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	return d.drained()
}

// AppendRepRecords appends r as one frame to dst.
func AppendRepRecords(dst []byte, r *RepRecords) []byte {
	return appendFrame(dst, FrameRepRecords, func(b []byte) []byte {
		b = binary.AppendUvarint(b, r.ID)
		b = appendStr(b, r.ShardID)
		b = binary.AppendUvarint(b, uint64(len(r.Recs)))
		for _, rec := range r.Recs {
			b = append(b, rec.Type)
			b = binary.AppendUvarint(b, rec.Epoch)
			b = binary.AppendVarint(b, rec.Arg)
			b = binary.AppendVarint(b, rec.Result)
		}
		return b
	})
}

// Decode decodes the payload of a rep-records frame into r, reusing
// r.Recs when its capacity suffices.
//
//spatialvet:errclass
func (r *RepRecords) Decode(payload []byte) error {
	d := decoder{buf: payload}
	var err error
	if r.ID, err = d.uvarint(); err != nil {
		return err
	}
	if r.ShardID, err = d.str(maxNameLen); err != nil {
		return err
	}
	n, err := d.count("record")
	if err != nil {
		return err
	}
	if cap(r.Recs) < n {
		r.Recs = make([]RepRecord, n)
	}
	r.Recs = r.Recs[:n]
	for i := range r.Recs {
		rec := &r.Recs[i]
		if rec.Type, err = d.byte(); err != nil {
			return err
		}
		if rec.Type != OpInsert && rec.Type != OpDelete {
			return corruptf("unknown record type %d", rec.Type)
		}
		if rec.Epoch, err = d.uvarint(); err != nil {
			return err
		}
		if rec.Arg, err = d.varint(); err != nil {
			return err
		}
		if rec.Result, err = d.varint(); err != nil {
			return err
		}
	}
	return d.drained()
}

// AppendRepAck appends a as one frame to dst.
func AppendRepAck(dst []byte, a *RepAck) []byte {
	return appendFrame(dst, FrameRepAck, func(b []byte) []byte {
		b = binary.AppendUvarint(b, a.ID)
		b = appendStr(b, a.ShardID)
		b = binary.AppendUvarint(b, a.Cursor)
		b = append(b, a.Code)
		msg := a.Msg
		if len(msg) > maxErrLen {
			msg = msg[:maxErrLen]
		}
		b = appendStr(b, msg)
		return b
	})
}

// Decode decodes the payload of a rep-ack frame into a.
//
//spatialvet:errclass
func (a *RepAck) Decode(payload []byte) error {
	d := decoder{buf: payload}
	var err error
	if a.ID, err = d.uvarint(); err != nil {
		return err
	}
	if a.ShardID, err = d.str(maxNameLen); err != nil {
		return err
	}
	if a.Cursor, err = d.uvarint(); err != nil {
		return err
	}
	if a.Code, err = d.byte(); err != nil {
		return err
	}
	if a.Code > AckRefused {
		return corruptf("unknown ack code %d", a.Code)
	}
	if a.Msg, err = d.str(maxErrLen); err != nil {
		return err
	}
	return d.drained()
}

// appendRecs appends a counted record list (the RepRecords layout,
// shared by the handback frames).
func appendRecs(b []byte, recs []RepRecord) []byte {
	b = binary.AppendUvarint(b, uint64(len(recs)))
	for _, rec := range recs {
		b = append(b, rec.Type)
		b = binary.AppendUvarint(b, rec.Epoch)
		b = binary.AppendVarint(b, rec.Arg)
		b = binary.AppendVarint(b, rec.Result)
	}
	return b
}

// recs decodes a counted record list into dst (reusing its capacity).
func (d *decoder) recs(dst []RepRecord) ([]RepRecord, error) {
	n, err := d.count("record")
	if err != nil {
		return nil, err
	}
	if cap(dst) < n {
		dst = make([]RepRecord, n)
	}
	dst = dst[:n]
	for i := range dst {
		rec := &dst[i]
		if rec.Type, err = d.byte(); err != nil {
			return nil, err
		}
		if rec.Type != OpInsert && rec.Type != OpDelete {
			return nil, corruptf("unknown record type %d", rec.Type)
		}
		if rec.Epoch, err = d.uvarint(); err != nil {
			return nil, err
		}
		if rec.Arg, err = d.varint(); err != nil {
			return nil, err
		}
		if rec.Result, err = d.varint(); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// AppendHandbackOffer appends o as one frame to dst.
func AppendHandbackOffer(dst []byte, o *HandbackOffer) []byte {
	return appendFrame(dst, FrameHandbackOffer, func(b []byte) []byte {
		b = binary.AppendUvarint(b, o.ID)
		b = appendStr(b, o.ShardID)
		b = append(b, o.Phase)
		b = binary.AppendUvarint(b, o.Cursor)
		return appendRecs(b, o.Recs)
	})
}

// Decode decodes the payload of a handback-offer frame into o, reusing
// o.Recs when its capacity suffices.
//
//spatialvet:errclass
func (o *HandbackOffer) Decode(payload []byte) error {
	d := decoder{buf: payload}
	var err error
	if o.ID, err = d.uvarint(); err != nil {
		return err
	}
	if o.ShardID, err = d.str(maxNameLen); err != nil {
		return err
	}
	if o.Phase, err = d.byte(); err != nil {
		return err
	}
	if o.Phase != HandbackProbe && o.Phase != HandbackClaim {
		return corruptf("unknown handback phase %d", o.Phase)
	}
	if o.Cursor, err = d.uvarint(); err != nil {
		return err
	}
	if o.Recs, err = d.recs(o.Recs); err != nil {
		return err
	}
	return d.drained()
}

// AppendHandbackGrant appends g as one frame to dst.
func AppendHandbackGrant(dst []byte, g *HandbackGrant) []byte {
	return appendFrame(dst, FrameHandbackGrant, func(b []byte) []byte {
		b = binary.AppendUvarint(b, g.ID)
		b = appendStr(b, g.ShardID)
		b = append(b, g.Mode)
		b = binary.AppendUvarint(b, g.Fence)
		b = appendRecs(b, g.Recs)
		b = binary.AppendUvarint(b, uint64(len(g.Blob)))
		b = append(b, g.Blob...)
		msg := g.Msg
		if len(msg) > maxErrLen {
			msg = msg[:maxErrLen]
		}
		return appendStr(b, msg)
	})
}

// Decode decodes the payload of a handback-grant frame into g. The
// blob is freshly allocated: it outlives the reader's frame buffer.
//
//spatialvet:errclass
func (g *HandbackGrant) Decode(payload []byte) error {
	d := decoder{buf: payload}
	var err error
	if g.ID, err = d.uvarint(); err != nil {
		return err
	}
	if g.ShardID, err = d.str(maxNameLen); err != nil {
		return err
	}
	if g.Mode, err = d.byte(); err != nil {
		return err
	}
	if g.Mode > GrantSnapshot {
		return corruptf("unknown handback grant mode %d", g.Mode)
	}
	if g.Fence, err = d.uvarint(); err != nil {
		return err
	}
	if g.Recs, err = d.recs(g.Recs); err != nil {
		return err
	}
	n, err := d.count("blob byte")
	if err != nil {
		return err
	}
	g.Blob = append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	if g.Msg, err = d.str(maxErrLen); err != nil {
		return err
	}
	return d.drained()
}
