package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleQueries() []*Query {
	return []*Query{
		{Kind: KindTreefix, TreeID: "t1", Op: "add", Vals: []int64{1, -2, 3}},
		{Kind: KindTopDown, Parents: []int{-1, 0, 0, 1}, Op: "max", Vals: []int64{5, 0, -7, 9}},
		{Kind: KindLCA, TreeID: "t1", Queries: []LCAQuery{{U: 1, V: 2}, {U: 3, V: 0}}},
		{Kind: KindMinCut, Parents: []int{-1, 0, 0}, Edges: []Edge{{U: 0, V: 1, W: 4}, {U: 1, V: 2, W: -0x7fffffff}}},
		{Kind: KindExpr, TreeID: "e", ExprKinds: []uint8{1, 0, 0}, Vals: []int64{0, 2, 3}},
	}
}

func sampleResults() []*Result {
	return []*Result{
		{ID: 1, Kind: KindTreefix, Sums: []int64{2, -1, 4}, Cost: Cost{Energy: 10, Messages: 3, Depth: 2}},
		{ID: 2, Kind: KindLCA, Answers: []int{0, 0}},
		{ID: 3, Kind: KindMinCut, MinWeight: -5, ArgVertex: 2},
		{ID: 4, Kind: KindExpr, Value: 5},
		{ID: 5, Kind: KindTopDown, Sums: []int64{}},
	}
}

// TestQueryRoundTrip: every query kind survives encode → frame read →
// decode byte-for-byte, including negative values and both routes.
func TestQueryRoundTrip(t *testing.T) {
	for i, q := range sampleQueries() {
		q.ID = uint64(i + 1)
		frame := AppendQuery(nil, q)
		rd := NewReader(bytes.NewReader(frame), 0)
		kind, payload, err := rd.Next()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if kind != FrameQuery {
			t.Fatalf("query %d: frame kind %d", i, kind)
		}
		var got Query
		if err := got.Decode(payload); err != nil {
			t.Fatalf("query %d: decode: %v", i, err)
		}
		if !queriesEqual(&got, q) {
			t.Fatalf("query %d round trip:\n got %+v\nwant %+v", i, got, *q)
		}
	}
}

// queriesEqual compares semantically: decode normalizes absent slices
// to empty ones because it reuses buffers.
func queriesEqual(a, b *Query) bool {
	return a.ID == b.ID && a.Kind == b.Kind && a.TreeID == b.TreeID && a.Op == b.Op &&
		intsEq(a.Parents, b.Parents) && valsEq(a.Vals, b.Vals) &&
		reflect.DeepEqual(norm(a.Queries), norm(b.Queries)) &&
		reflect.DeepEqual(norm(a.Edges), norm(b.Edges)) &&
		reflect.DeepEqual(norm(a.ExprKinds), norm(b.ExprKinds))
}

func norm[T any](s []T) []T {
	if len(s) == 0 {
		return nil
	}
	return s
}
func intsEq(a, b []int) bool   { return reflect.DeepEqual(norm(a), norm(b)) }
func valsEq(a, b []int64) bool { return reflect.DeepEqual(norm(a), norm(b)) }

func TestResultRoundTrip(t *testing.T) {
	for i, r := range sampleResults() {
		frame := AppendResult(nil, r)
		rd := NewReader(bytes.NewReader(frame), 0)
		kind, payload, err := rd.Next()
		if err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if kind != FrameResult {
			t.Fatalf("result %d: frame kind %d", i, kind)
		}
		var got Result
		if err := got.Decode(payload); err != nil {
			t.Fatalf("result %d: decode: %v", i, err)
		}
		if got.ID != r.ID || got.Kind != r.Kind || got.Cost != r.Cost ||
			got.MinWeight != r.MinWeight || got.ArgVertex != r.ArgVertex || got.Value != r.Value ||
			!valsEq(got.Sums, r.Sums) || !reflect.DeepEqual(norm(got.Answers), norm(r.Answers)) {
			t.Fatalf("result %d round trip:\n got %+v\nwant %+v", i, got, *r)
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e := &Error{ID: 42, Status: StatusTooMany, Msg: "queue full"}
	frame := AppendError(nil, e)
	rd := NewReader(bytes.NewReader(frame), 0)
	kind, payload, err := rd.Next()
	if err != nil || kind != FrameError {
		t.Fatalf("kind %d err %v", kind, err)
	}
	var got Error
	if err := got.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if got != *e {
		t.Fatalf("got %+v want %+v", got, *e)
	}
	if !strings.Contains(got.Error(), "queue full") || !strings.Contains(got.Error(), "too many") {
		t.Fatalf("error text %q", got.Error())
	}
}

// TestQueryDecodeReuse: decoding into the same Query must reuse its
// slices (capacity permitting) and fully overwrite stale state.
func TestQueryDecodeReuse(t *testing.T) {
	var q Query
	frames := sampleQueries()
	var buf []byte
	for round := 0; round < 3; round++ {
		for i, want := range frames {
			want.ID = uint64(100*round + i)
			buf = AppendQuery(buf[:0], want)
			if err := q.Decode(buf[HeaderLen:]); err != nil {
				t.Fatal(err)
			}
			if !queriesEqual(&q, want) {
				t.Fatalf("round %d query %d: reuse drifted:\n got %+v\nwant %+v", round, i, q, *want)
			}
		}
	}
}

func TestReaderMultipleFrames(t *testing.T) {
	var stream []byte
	stream = AppendPing(stream)
	stream = AppendQuery(stream, &Query{ID: 7, Kind: KindTreefix, TreeID: "x", Op: "add"})
	stream = AppendPong(stream)
	rd := NewReader(bytes.NewReader(stream), 0)
	wantKinds := []byte{FramePing, FrameQuery, FramePong}
	for i, want := range wantKinds {
		kind, _, err := rd.Next()
		if err != nil || kind != want {
			t.Fatalf("frame %d: kind %d err %v, want kind %d", i, kind, err, want)
		}
	}
	if _, _, err := rd.Next(); err != io.EOF {
		t.Fatalf("after stream: %v, want io.EOF", err)
	}
}

func TestReaderRejects(t *testing.T) {
	valid := AppendQuery(nil, &Query{ID: 1, Kind: KindTreefix, TreeID: "t", Op: "add", Vals: []int64{1}})

	t.Run("bad magic", func(t *testing.T) {
		bad := bytes.Clone(valid)
		bad[0] = 'X'
		if _, _, err := NewReader(bytes.NewReader(bad), 0).Next(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := bytes.Clone(valid)
		bad[4] = 99
		if _, _, err := NewReader(bytes.NewReader(bad), 0).Next(); !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("crc mismatch", func(t *testing.T) {
		bad := bytes.Clone(valid)
		bad[len(bad)-1] ^= 0xff
		if _, _, err := NewReader(bytes.NewReader(bad), 0).Next(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		if _, _, err := NewReader(bytes.NewReader(valid[:len(valid)-2]), 0).Next(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, _, err := NewReader(bytes.NewReader(valid[:HeaderLen-3]), 0).Next(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("declared length beyond stream", func(t *testing.T) {
		bad := bytes.Clone(valid)
		binary.LittleEndian.PutUint32(bad[6:], uint32(len(bad))) // longer than remaining bytes
		if _, _, err := NewReader(bytes.NewReader(bad), 0).Next(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v", err)
		}
	})
}

// TestReaderTooLargeKeepsStream: an oversized frame is reported as
// ErrTooLarge, its payload discarded, and the following frame still
// reads cleanly — the server leans on this to answer 413-equivalents
// without dropping the connection.
func TestReaderTooLargeKeepsStream(t *testing.T) {
	big := AppendQuery(nil, &Query{ID: 1, Kind: KindTreefix, TreeID: "t", Op: "add", Vals: make([]int64, 100)})
	small := AppendPing(nil)
	rd := NewReader(bytes.NewReader(append(bytes.Clone(big), small...)), 32)
	if _, _, err := rd.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized frame: %v, want ErrTooLarge", err)
	}
	kind, _, err := rd.Next()
	if err != nil || kind != FramePing {
		t.Fatalf("frame after oversized: kind %d err %v", kind, err)
	}
}

// TestDecodeRejectsHostileCounts: counts larger than the remaining
// payload must be rejected before any allocation happens.
func TestDecodeRejectsHostileCounts(t *testing.T) {
	// Hand-build a treefix query payload claiming 2^40 values.
	var p []byte
	p = binary.AppendUvarint(p, 1) // id
	p = append(p, KindTreefix, routeTreeID)
	p = binary.AppendUvarint(p, 1)
	p = append(p, 't')
	p = binary.AppendUvarint(p, 3)
	p = append(p, 'a', 'd', 'd')
	p = binary.AppendUvarint(p, 1<<40) // hostile count
	var q Query
	if err := q.Decode(p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile count: %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	frame := AppendPingPayloadTrailer(t)
	var q Query
	if err := q.Decode(frame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: %v, want ErrCorrupt", err)
	}
}

func AppendPingPayloadTrailer(t *testing.T) []byte {
	t.Helper()
	full := AppendQuery(nil, &Query{ID: 1, Kind: KindLCA, TreeID: "t"})
	return append(bytes.Clone(full[HeaderLen:]), 0x00)
}

func TestStatusMapping(t *testing.T) {
	cases := map[Status]int{
		StatusOK: 200, StatusBadRequest: 400, StatusNotFound: 404,
		StatusTooMany: 429, StatusUnavailable: 503, StatusTooLarge: 413,
		StatusInternal: 500, Status(200): 500,
	}
	for s, want := range cases {
		if got := s.HTTPStatus(); got != want {
			t.Errorf("%v.HTTPStatus() = %d, want %d", s, got, want)
		}
	}
	for s := Status(0); s < 7; s++ {
		if s.String() == "" || strings.HasPrefix(s.String(), "status ") {
			t.Errorf("Status(%d) has no name", s)
		}
	}
}

func TestKindNames(t *testing.T) {
	for k, want := range map[uint8]string{
		KindTreefix: "treefix", KindTopDown: "topdown", KindLCA: "lca",
		KindMinCut: "mincut", KindExpr: "expr", 99: "",
	} {
		if got := KindName(k); got != want {
			t.Errorf("KindName(%d) = %q, want %q", k, got, want)
		}
	}
}

// TestClientAgainstEchoServer exercises Dial/Do/Ping/Close against a
// minimal in-test server that echoes queries back as results.
func TestClientAgainstEchoServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		rd := NewReader(conn, 0)
		var q Query
		var out []byte
		for {
			kind, payload, err := rd.Next()
			if err != nil {
				return
			}
			switch kind {
			case FramePing:
				out = AppendPong(out[:0])
			case FrameQuery:
				if err := q.Decode(payload); err != nil {
					return
				}
				if q.TreeID == "missing" {
					out = AppendError(out[:0], &Error{ID: q.ID, Status: StatusNotFound, Msg: "no such tree"})
				} else {
					out = AppendResult(out[:0], &Result{ID: q.ID, Kind: q.Kind, Sums: q.Vals})
				}
			default:
				return
			}
			if _, err := conn.Write(out); err != nil {
				return
			}
		}
	}()

	c, err := Dial(ln.Addr().String(), DialOptions{DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	res, err := c.Do(&Query{Kind: KindTreefix, TreeID: "t", Op: "add", Vals: []int64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !valsEq(res.Sums, []int64{1, 2, 3}) {
		t.Fatalf("echo sums %v", res.Sums)
	}
	_, err = c.Do(&Query{Kind: KindTreefix, TreeID: "missing", Op: "add"})
	var we *Error
	if !errors.As(err, &we) || we.Status != StatusNotFound {
		t.Fatalf("missing tree: %v, want StatusNotFound", err)
	}
	// After Close, calls fail fast.
	c.Close()
	if _, err := c.Do(&Query{Kind: KindTreefix, TreeID: "t"}); err == nil {
		t.Fatal("Do after Close succeeded")
	}
}

// TestClientConnectionError: a server that slams the door mid-flight
// must fail the pending call rather than hang it.
func TestClientConnectionError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Read the query, then hang up without answering.
		buf := make([]byte, 1)
		conn.Read(buf)
		conn.Close()
	}()
	c, err := Dial(ln.Addr().String(), DialOptions{DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(&Query{Kind: KindTreefix, TreeID: "t", Op: "add"})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Do succeeded against a hung-up server")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do hung after server disconnect")
	}
}

func TestBufPool(t *testing.T) {
	b := GetBuf()
	*b = AppendPing(*b)
	if len(*b) != HeaderLen {
		t.Fatalf("ping frame length %d", len(*b))
	}
	PutBuf(b)
	b2 := GetBuf()
	if len(*b2) != 0 {
		t.Fatal("pooled buffer not reset")
	}
	PutBuf(b2)
}
