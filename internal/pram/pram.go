// Package pram provides the PRAM comparison points the paper measures
// its spatial algorithms against (Sections I-B, II-A): the analytic cost
// of simulating a PRAM algorithm on the spatial computer, and an
// executable PRAM-style treefix baseline whose messages are charged on
// the simulator.
//
// The spatial computer can simulate a shared-memory algorithm with p
// processors, m memory cells and T_p steps at O(p·(√p + √m)·T_p) energy
// with poly-logarithmic depth overhead. For work-optimal tree algorithms
// (p = n/log n, m = Θ(n), T_p = Θ(log n)) this gives Θ(n^{3/2}) energy
// and O(log⁴ n) depth — the bounds the paper's treefix (O(n log n)
// energy, O(log n) depth) improves on polynomially.
package pram

import (
	"math"

	"spatialtree/internal/listrank"
	"spatialtree/internal/machine"
	"spatialtree/internal/tree"
)

// SimulationEnergy returns the energy of simulating a PRAM algorithm
// with p processors, m memory cells and steps time steps on the spatial
// computer: p·(√p + √m)·steps (constant factor 1).
func SimulationEnergy(p, m, steps int) float64 {
	return float64(p) * (math.Sqrt(float64(p)) + math.Sqrt(float64(m))) * float64(steps)
}

// WorkOptimalTreefixEnergy returns the analytic energy of simulating a
// work-optimal PRAM treefix (p = n/log n, m = 2n, T = log n): the
// Θ(n^{3/2}) curve from the paper's introduction.
func WorkOptimalTreefixEnergy(n int) float64 {
	if n < 2 {
		return 0
	}
	logn := math.Log2(float64(n))
	return SimulationEnergy(int(float64(n)/logn), 2*n, int(math.Ceil(logn)))
}

// WorkOptimalTreefixDepth returns the paper's O(log⁴ n) depth estimate
// for the PRAM simulation (constant factor 1).
func WorkOptimalTreefixDepth(n int) float64 {
	if n < 2 {
		return 0
	}
	l := math.Log2(float64(n))
	return l * l * l * l
}

// LCADirect answers LCA queries PRAM-style on the grid: it builds the
// classic Euler-tour sparse table, charging every shared-memory access
// as a message between the owning processors. Table cell (k, i) lives at
// processor (k·0x9e37 + i) mod procs — PRAM memory has no layout, so
// cells are scattered — and is computed from two row-(k-1) reads
// (request + reply each). Θ(n log n) cells at Θ(√n) distance:
// Θ(n^{3/2} log n) energy, against Theorem 6's O(n log n).
//
// queries are (u, v) pairs; the returned slice holds one LCA each.
func LCADirect(s *machine.Sim, t *tree.Tree, queries [][2]int) []int {
	n := t.N()
	out := make([]int, len(queries))
	if n == 0 {
		return out
	}
	tour := t.EulerTour(nil)
	m := len(tour)
	depth := t.Depths()
	first := make([]int, n)
	for i := range first {
		first[i] = -1
	}
	for i, v := range tour {
		if first[v] == -1 {
			first[v] = i
		}
	}
	owner := func(k, i int) int {
		return (k*0x9e37 + i) % s.Procs()
	}
	// Row 0 is the tour itself, co-located with the tour nodes (the
	// input layout: tour position i at processor i mod procs).
	levels := 1
	for 1<<levels <= m {
		levels++
	}
	table := make([][]int32, levels)
	row0 := make([]int32, m)
	for i := 0; i < m; i++ {
		row0[i] = int32(i)
	}
	table[0] = row0
	prevOwner := func(i int) int { return i % s.Procs() }
	pairs := make([][2]int, 0, 4*m)
	for k := 1; k < levels; k++ {
		width := 1 << k
		rows := m - width + 1
		if rows <= 0 {
			table = table[:k]
			break
		}
		row := make([]int32, rows)
		prev := table[k-1]
		half := width / 2
		pairs = pairs[:0]
		for i := 0; i < rows; i++ {
			w := owner(k, i)
			pairs = append(pairs,
				[2]int{w, prevOwner(i)}, [2]int{prevOwner(i), w},
				[2]int{w, prevOwner(i + half)}, [2]int{prevOwner(i + half), w})
			a, b := prev[i], prev[i+half]
			if depth[tour[a]] <= depth[tour[b]] {
				row[i] = a
			} else {
				row[i] = b
			}
		}
		s.SendBatch(pairs)
		table[k] = row
		kk := k
		prevOwner = func(i int) int { return owner(kk, i) }
	}
	logs := make([]uint8, m+1)
	for i := 2; i <= m; i++ {
		logs[i] = logs[i/2] + 1
	}
	pairs = pairs[:0]
	for qi, q := range queries {
		a, b := first[q[0]], first[q[1]]
		if a > b {
			a, b = b, a
		}
		k := int(logs[b-a+1])
		i1, i2 := int(table[k][a]), int(table[k][b-(1<<k)+1])
		// Two table reads, request + reply, from the querying vertex's
		// processor (u's home, rank u in the input layout).
		home := q[0] % s.Procs()
		pairs = append(pairs,
			[2]int{home, owner(k, a)}, [2]int{owner(k, a), home},
			[2]int{home, owner(k, b-(1<<k)+1)}, [2]int{owner(k, b-(1<<k)+1), home})
		if depth[tour[i1]] <= depth[tour[i2]] {
			out[qi] = tour[i1]
		} else {
			out[qi] = tour[i2]
		}
	}
	s.SendBatch(pairs)
	return out
}

// TreefixDirect executes a PRAM-style bottom-up treefix sum (values
// added over subtrees) directly on the grid, charging every shared-
// memory access as a message: Euler tour, Wyllie pointer-jumping list
// ranking, and a Hillis-Steele (pointer-doubling) prefix sum over tour
// positions. Vertices sit at processor ranks in input order — a PRAM
// has no layout, so no locality is available. Θ(n^{3/2} log n) energy.
//
// Returns the subtree sums, verifying the baseline really computes the
// same function as the spatial algorithm.
func TreefixDirect(s *machine.Sim, t *tree.Tree, vals []int64) []int64 {
	n := t.N()
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[0] = vals[0]
		return out
	}
	if s.Procs() < 2*n {
		panic("pram: grid too small; create with machine.New(2*n, curve)")
	}

	// Euler edge tour, host-built (construction cost is dominated by the
	// ranking and scan below). Edge ids: down(v)=2v, up(v)=2v+1.
	root := t.Root()
	next := make([]int, 2*n)
	for i := range next {
		next[i] = -2
	}
	for v := 0; v < n; v++ {
		ch := t.Children(v)
		if v != root {
			if len(ch) > 0 {
				next[2*v] = 2 * ch[0]
			} else {
				next[2*v] = 2*v + 1
			}
		}
		for i, c := range ch {
			switch {
			case i+1 < len(ch):
				next[2*c+1] = 2 * ch[i+1]
			case v == root:
				next[2*c+1] = -1
			default:
				next[2*c+1] = 2*v + 1
			}
		}
	}
	// Compact to list-rank input; node e lives at the processor of its
	// vertex (input order).
	id := make([]int, 2*n)
	var back []int
	m := 0
	for e, nx := range next {
		if nx != -2 {
			id[e] = m
			back = append(back, e)
			m++
		} else {
			id[e] = -1
		}
	}
	cnext := make([]int, m)
	cproc := make([]int, m)
	for e, nx := range next {
		if nx == -2 {
			continue
		}
		if nx == -1 {
			cnext[id[e]] = -1
		} else {
			cnext[id[e]] = id[nx]
		}
		cproc[id[e]] = back[id[e]] / 2
	}
	ranks := listrank.Wyllie(s, cnext, cproc)
	L := m
	pos := make([]int, m) // compact node -> tour position
	for i := 0; i < m; i++ {
		pos[i] = (L - 1) - int(ranks[i])
	}

	// Hillis-Steele inclusive scan over tour positions of the down-edge
	// contributions. Element at position p lives at the processor of the
	// edge occupying p; each round, position p pulls from p - 2^k
	// (request + reply), PRAM-style.
	procAt := make([]int, L)
	contrib := make([]int64, L)
	for i := 0; i < m; i++ {
		e := back[i]
		procAt[pos[i]] = e / 2
		if e%2 == 0 { // down edge
			contrib[pos[i]] = vals[e/2]
		}
	}
	pairs := make([][2]int, 0, 2*L)
	for k := 1; k < L; k *= 2 {
		pairs = pairs[:0]
		for p := L - 1; p >= k; p-- {
			pairs = append(pairs, [2]int{procAt[p], procAt[p-k]}, [2]int{procAt[p-k], procAt[p]})
		}
		s.SendBatch(pairs)
		nc := append([]int64(nil), contrib...)
		for p := L - 1; p >= k; p-- {
			nc[p] = contrib[p] + contrib[p-k]
		}
		contrib = nc
	}

	// Extract subtree sums: both edges of v are at v's processor.
	for v := 0; v < n; v++ {
		if v == root {
			out[v] = contrib[L-1] + vals[root]
			continue
		}
		pd := pos[id[2*v]]
		pu := pos[id[2*v+1]]
		out[v] = contrib[pu] - contrib[pd] + vals[v]
	}
	return out
}
