package pram

import (
	"testing"

	"spatialtree/internal/machine"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

func TestSimulationEnergyFormula(t *testing.T) {
	if got := SimulationEnergy(4, 0, 3); got != 4*2*3 {
		t.Fatalf("SimulationEnergy = %v", got)
	}
	if got := SimulationEnergy(0, 9, 5); got != 0 {
		t.Fatalf("SimulationEnergy = %v", got)
	}
}

func TestWorkOptimalCurvesGrow(t *testing.T) {
	// Energy ~ n^{3/2}: quadrupling n should scale energy by about 8.
	e1 := WorkOptimalTreefixEnergy(1 << 12)
	e2 := WorkOptimalTreefixEnergy(1 << 14)
	ratio := e2 / e1
	if ratio < 6 || ratio > 10 {
		t.Errorf("PRAM energy ratio for 4x n = %.2f, want about 8", ratio)
	}
	if WorkOptimalTreefixDepth(1<<10) <= WorkOptimalTreefixDepth(1<<8) {
		t.Error("PRAM depth curve must grow")
	}
	if WorkOptimalTreefixEnergy(1) != 0 || WorkOptimalTreefixDepth(1) != 0 {
		t.Error("degenerate n")
	}
}

func TestTreefixDirectCorrect(t *testing.T) {
	r := rng.New(1)
	trees := []*tree.Tree{
		tree.Path(2), tree.Path(20), tree.Star(25), tree.PerfectBinary(5),
		tree.Caterpillar(19), tree.RandomAttachment(150, r),
		tree.PreferentialAttachment(120, r),
	}
	for _, tr := range trees {
		vals := make([]int64, tr.N())
		for i := range vals {
			vals[i] = int64(r.Intn(100)) - 50
		}
		s := machine.New(2*tr.N(), sfc.Hilbert{})
		got := TreefixDirect(s, tr, vals)
		want := treefix.SequentialBottomUp(tr, vals, treefix.Add)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("n=%d: direct[%d] = %d, want %d", tr.N(), v, got[v], want[v])
			}
		}
	}
}

func TestTreefixDirectSingle(t *testing.T) {
	s := machine.New(2, sfc.Hilbert{})
	got := TreefixDirect(s, tree.Path(1), []int64{7})
	if got[0] != 7 {
		t.Fatalf("single vertex: %v", got)
	}
}

func TestLCADirectCorrect(t *testing.T) {
	r := rng.New(9)
	for _, n := range []int{2, 10, 100, 500} {
		tr := tree.RandomAttachment(n, r)
		s := machine.New(2*n, sfc.Hilbert{})
		var queries [][2]int
		for i := 0; i < 50; i++ {
			queries = append(queries, [2]int{r.Intn(n), r.Intn(n)})
		}
		got := LCADirect(s, tr, queries)
		for i, q := range queries {
			want := naiveLCA(tr, q[0], q[1])
			if got[i] != want {
				t.Fatalf("n=%d: LCA%v = %d, want %d", n, q, got[i], want)
			}
		}
		if s.Energy() <= 0 {
			t.Fatal("no energy charged for PRAM LCA")
		}
	}
}

func naiveLCA(t *tree.Tree, u, v int) int {
	seen := map[int]bool{}
	for x := u; x != -1; x = t.Parent(x) {
		seen[x] = true
	}
	for x := v; x != -1; x = t.Parent(x) {
		if seen[x] {
			return x
		}
	}
	return -1
}

func TestPRAMBaselineBurnsMoreEnergy(t *testing.T) {
	// The paper's headline comparison: spatial treefix (light-first
	// layout) vs PRAM-style execution. The PRAM baseline must spend
	// far more energy at equal n, and the gap must widen with n.
	gap := func(bits int) float64 {
		n := 1 << bits
		tr := tree.RandomBoundedDegree(n, 2, rng.New(uint64(bits)))
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i)
		}
		sp := machine.New(n, sfc.Hilbert{})
		rank := make([]int, n)
		for i := range rank {
			rank[i] = i
		}
		// Light-first layout for the spatial run.
		lf := lightFirstRanks(tr)
		spatial, _ := treefix.BottomUp(sp, tr, lf, vals, treefix.Add, rng.New(3))
		pr := machine.New(2*n, sfc.Hilbert{})
		direct := TreefixDirect(pr, tr, vals)
		for v := range spatial {
			if spatial[v] != direct[v] {
				t.Fatalf("bit=%d: result mismatch at %d", bits, v)
			}
		}
		return float64(pr.Energy()) / float64(sp.Energy())
	}
	g10, g13 := gap(10), gap(13)
	if g10 < 2 {
		t.Errorf("PRAM/spatial energy gap at 2^10 = %.2f, want > 2", g10)
	}
	if g13 < g10 {
		t.Errorf("gap must widen with n: %.2f (2^10) -> %.2f (2^13)", g10, g13)
	}
}

func lightFirstRanks(tr *tree.Tree) []int {
	size := tr.SubtreeSizes()
	_ = size
	// Inline light-first: DFS, children ascending by size.
	// (Avoids importing order to keep the dependency graph shallow.)
	n := tr.N()
	rank := make([]int, n)
	pos := 0
	var stack []int
	stack = append(stack, tr.Root())
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rank[v] = pos
		pos++
		ch := tr.ChildrenBySize(v, size)
		for i := len(ch) - 1; i >= 0; i-- {
			stack = append(stack, ch[i])
		}
	}
	return rank
}
