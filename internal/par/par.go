// Package par provides small fork-join helpers (parallel for, reduce,
// prefix sum) used by the goroutine-parallel executors. The paper's
// algorithms assume fine-grained hardware parallelism; on a CPU we
// realize the same algorithms with coarser grains over index ranges,
// which is the natural Go idiom for fork-join (goroutines + WaitGroup).
package par

import (
	"runtime"
	"sync"
)

// Workers returns the default worker count: GOMAXPROCS.
func Workers() int { return runtime.GOMAXPROCS(0) }

// For runs fn over [0, n) split into contiguous chunks across at most
// workers goroutines. fn receives a half-open index range. workers <= 0
// means Workers(). Chunks are sized so each worker gets one contiguous
// range (the executors choose grain by structuring their data, not by
// oversubscribing).
func For(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Tasks runs the given thunks concurrently and waits for all of them.
func Tasks(fns ...func()) {
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}

// ReduceInt64 folds vals with op (assumed associative and commutative,
// identity id) using workers goroutines.
func ReduceInt64(vals []int64, id int64, op func(a, b int64) int64, workers int) int64 {
	n := len(vals)
	if n == 0 {
		return id
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	partial := make([]int64, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	w := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := id
			for _, v := range vals[lo:hi] {
				acc = op(acc, v)
			}
			partial[w] = acc
		}(w, lo, hi)
		w++
	}
	wg.Wait()
	acc := id
	for _, p := range partial[:w] {
		acc = op(acc, p)
	}
	return acc
}

// ScanInt64 replaces vals with its inclusive prefix folds under an
// arbitrary associative combine with identity id, using the same
// two-pass block algorithm as PrefixSumInt64: per-block folds, a
// sequential fold of the block aggregates, then per-block fixups that
// prepend each block's left context (so non-commutative associative
// operators fold in index order). Span O(n/P + P).
func ScanInt64(vals []int64, id int64, combine func(a, b int64) int64, workers int) {
	n := len(vals)
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		run := id
		for i := range vals {
			run = combine(run, vals[i])
			vals[i] = run
		}
		return
	}
	chunk := (n + workers - 1) / workers
	nblocks := (n + chunk - 1) / chunk
	blockAgg := make([]int64, nblocks)
	var wg sync.WaitGroup
	for b := 0; b < nblocks; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			lo, hi := b*chunk, (b+1)*chunk
			if hi > n {
				hi = n
			}
			run := id
			for i := lo; i < hi; i++ {
				run = combine(run, vals[i])
				vals[i] = run
			}
			blockAgg[b] = run
		}(b)
	}
	wg.Wait()
	carry := id
	for b := 0; b < nblocks; b++ {
		blockAgg[b], carry = carry, combine(carry, blockAgg[b])
	}
	for b := 1; b < nblocks; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			lo, hi := b*chunk, (b+1)*chunk
			if hi > n {
				hi = n
			}
			off := blockAgg[b]
			for i := lo; i < hi; i++ {
				vals[i] = combine(off, vals[i])
			}
		}(b)
	}
	wg.Wait()
}

// PrefixSumInt64 replaces vals with its inclusive prefix sums under +,
// using the two-pass block algorithm: per-block sums, a sequential scan
// of the block sums, then per-block fixups. Span O(n/P + P).
func PrefixSumInt64(vals []int64, workers int) {
	n := len(vals)
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var run int64
		for i := range vals {
			run += vals[i]
			vals[i] = run
		}
		return
	}
	chunk := (n + workers - 1) / workers
	nblocks := (n + chunk - 1) / chunk
	blockSum := make([]int64, nblocks)
	var wg sync.WaitGroup
	for b := 0; b < nblocks; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			lo, hi := b*chunk, (b+1)*chunk
			if hi > n {
				hi = n
			}
			var run int64
			for i := lo; i < hi; i++ {
				run += vals[i]
				vals[i] = run
			}
			blockSum[b] = run
		}(b)
	}
	wg.Wait()
	var carry int64
	for b := 0; b < nblocks; b++ {
		blockSum[b], carry = carry, carry+blockSum[b]
	}
	for b := 1; b < nblocks; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			lo, hi := b*chunk, (b+1)*chunk
			if hi > n {
				hi = n
			}
			off := blockSum[b]
			for i := lo; i < hi; i++ {
				vals[i] += off
			}
		}(b)
	}
	wg.Wait()
}
