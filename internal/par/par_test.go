package par

import (
	"sync/atomic"
	"testing"

	"spatialtree/internal/rng"
)

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1001} {
		for _, w := range []int{0, 1, 2, 8, 64} {
			mark := make([]int32, n)
			For(n, w, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&mark[i], 1)
				}
			})
			for i, m := range mark {
				if m != 1 {
					t.Fatalf("n=%d w=%d: index %d touched %d times", n, w, i, m)
				}
			}
		}
	}
}

func TestTasks(t *testing.T) {
	var a, b, c int32
	Tasks(
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
		func() { atomic.StoreInt32(&c, 3) },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Fatal("tasks did not all run")
	}
}

func TestReduceInt64(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{0, 1, 10, 1000, 12345} {
		vals := make([]int64, n)
		var want int64
		for i := range vals {
			vals[i] = int64(r.Intn(100)) - 50
			want += vals[i]
		}
		for _, w := range []int{0, 1, 3, 16} {
			got := ReduceInt64(vals, 0, func(a, b int64) int64 { return a + b }, w)
			if got != want {
				t.Fatalf("n=%d w=%d: reduce = %d, want %d", n, w, got, want)
			}
		}
	}
}

func TestReduceMax(t *testing.T) {
	vals := []int64{3, -1, 7, 2, 7, 0}
	maxOp := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	if got := ReduceInt64(vals, -1<<62, maxOp, 4); got != 7 {
		t.Fatalf("max = %d", got)
	}
}

func TestPrefixSumInt64(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{0, 1, 2, 100, 4096, 10007} {
		vals := make([]int64, n)
		want := make([]int64, n)
		var run int64
		for i := range vals {
			vals[i] = int64(r.Intn(20)) - 10
			run += vals[i]
			want[i] = run
		}
		for _, w := range []int{0, 1, 4, 32} {
			got := append([]int64(nil), vals...)
			PrefixSumInt64(got, w)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d w=%d: prefix[%d] = %d, want %d", n, w, i, got[i], want[i])
				}
			}
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatal("Workers() < 1")
	}
}
