package par

import (
	"sync/atomic"
	"testing"

	"spatialtree/internal/rng"
)

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1001} {
		for _, w := range []int{0, 1, 2, 8, 64} {
			mark := make([]int32, n)
			For(n, w, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&mark[i], 1)
				}
			})
			for i, m := range mark {
				if m != 1 {
					t.Fatalf("n=%d w=%d: index %d touched %d times", n, w, i, m)
				}
			}
		}
	}
}

func TestTasks(t *testing.T) {
	var a, b, c int32
	Tasks(
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
		func() { atomic.StoreInt32(&c, 3) },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Fatal("tasks did not all run")
	}
}

func TestReduceInt64(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{0, 1, 10, 1000, 12345} {
		vals := make([]int64, n)
		var want int64
		for i := range vals {
			vals[i] = int64(r.Intn(100)) - 50
			want += vals[i]
		}
		for _, w := range []int{0, 1, 3, 16} {
			got := ReduceInt64(vals, 0, func(a, b int64) int64 { return a + b }, w)
			if got != want {
				t.Fatalf("n=%d w=%d: reduce = %d, want %d", n, w, got, want)
			}
		}
	}
}

func TestReduceMax(t *testing.T) {
	vals := []int64{3, -1, 7, 2, 7, 0}
	maxOp := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	if got := ReduceInt64(vals, -1<<62, maxOp, 4); got != 7 {
		t.Fatalf("max = %d", got)
	}
}

func TestPrefixSumInt64(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{0, 1, 2, 100, 4096, 10007} {
		vals := make([]int64, n)
		want := make([]int64, n)
		var run int64
		for i := range vals {
			vals[i] = int64(r.Intn(20)) - 10
			run += vals[i]
			want[i] = run
		}
		for _, w := range []int{0, 1, 4, 32} {
			got := append([]int64(nil), vals...)
			PrefixSumInt64(got, w)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d w=%d: prefix[%d] = %d, want %d", n, w, i, got[i], want[i])
				}
			}
		}
	}
}

// TestForEdgeGrains pins the chunking contract at the boundaries the
// native kernels rely on: n smaller than the worker count must still
// produce disjoint single-index chunks, n == 0 must not invoke fn at
// all, and the single-worker fast path must run inline over the full
// range (no goroutine: callers may rely on stack locality).
func TestForEdgeGrains(t *testing.T) {
	// n < workers: every index covered exactly once, each chunk non-empty.
	var chunks atomic.Int32
	mark := make([]int32, 3)
	For(3, 64, func(lo, hi int) {
		chunks.Add(1)
		if lo >= hi {
			t.Error("empty chunk dispatched")
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&mark[i], 1)
		}
	})
	if chunks.Load() != 3 {
		t.Fatalf("n=3 w=64: %d chunks, want 3 single-index chunks", chunks.Load())
	}
	for i, m := range mark {
		if m != 1 {
			t.Fatalf("index %d touched %d times", i, m)
		}
	}

	// n == 0: fn must never run (a zero-length kernel pass is free).
	called := false
	For(0, 8, func(lo, hi int) { called = true })
	if called {
		t.Fatal("For(0, ...) invoked fn")
	}

	// workers == 1 (and n == 1 forcing it): one inline call spanning the
	// whole range.
	for _, tc := range []struct{ n, w int }{{100, 1}, {1, 16}} {
		calls := 0
		For(tc.n, tc.w, func(lo, hi int) {
			calls++
			if lo != 0 || hi != tc.n {
				t.Fatalf("n=%d w=%d: chunk [%d,%d), want [0,%d)", tc.n, tc.w, lo, hi, tc.n)
			}
		})
		if calls != 1 {
			t.Fatalf("n=%d w=%d: %d calls, want 1", tc.n, tc.w, calls)
		}
	}
}

func TestScanInt64(t *testing.T) {
	r := rng.New(3)
	maxOp := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	// Affine-map composition mod 251, packed as a*256+b: associative but
	// NOT commutative, so the scan's fixup order (prepend left context)
	// is load-bearing. combine(F, G) applies F first, then G.
	const p = 251
	affine := func(f, g int64) int64 {
		af, bf := f/256, f%256
		ag, bg := g/256, g%256
		return (ag * af % p * 256) + (ag*bf+bg)%p
	}
	ops := []struct {
		name    string
		id      int64
		combine func(a, b int64) int64
	}{
		{"add", 0, func(a, b int64) int64 { return a + b }},
		{"max", -1 << 62, maxOp},
		{"xor", 0, func(a, b int64) int64 { return a ^ b }},
		{"affine", 1 * 256, affine},
	}
	for _, op := range ops {
		for _, n := range []int{0, 1, 2, 3, 100, 4096, 10007} {
			vals := make([]int64, n)
			want := make([]int64, n)
			run := op.id
			for i := range vals {
				if op.name == "affine" {
					vals[i] = int64(r.Intn(p))*256 + int64(r.Intn(p))
				} else {
					vals[i] = int64(r.Intn(200)) - 100
				}
				run = op.combine(run, vals[i])
				want[i] = run
			}
			for _, w := range []int{0, 1, 4, 32} {
				got := append([]int64(nil), vals...)
				ScanInt64(got, op.id, op.combine, w)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("op=%s n=%d w=%d: scan[%d] = %d, want %d", op.name, n, w, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatal("Workers() < 1")
	}
}
