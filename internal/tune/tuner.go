package tune

import (
	"sync"
	"time"

	"spatialtree/internal/engine"
	"spatialtree/internal/exec"
	"spatialtree/internal/sfc"
)

// Tuning defaults; see Config.
const (
	// DefaultInterval is the tick period of the background loop.
	DefaultInterval = 2 * time.Second
	// DefaultThreshold is the hysteresis threshold: the minimum
	// projected fractional win a candidate must beat the current
	// configuration by before the tuner republishes.
	DefaultThreshold = 0.15
	// DefaultMinSamples is the number of profiled batches a shard needs
	// before the tuner scores it, and the number of post-republish
	// batches the realized-win check waits for.
	DefaultMinSamples = 8
	// DefaultEWMAAlpha is the profile's cost-average smoothing factor.
	DefaultEWMAAlpha = 0.25
	// DefaultNativeSpeedup is the prior wall-clock ratio between the
	// native and sim backends used to project backend switches (the
	// E16 benchmark gates native at >= 5x sim and measures >10x; the
	// realized-win check corrects an optimistic prior via backoff).
	DefaultNativeSpeedup = 8
	// missFraction: a republish whose realized win is below this
	// fraction of its projection counts as a miss and doubles the
	// shard's cooldown.
	missFraction = 0.5
	// driftPenalty scales the projected query-energy degradation of a
	// larger rebuild threshold: parked vertices drift up to eps*n
	// mutations from their light-first slots between rebuilds.
	driftPenalty = 0.5
	// probePoints sizes the fixed grid the curve-quality predictors run
	// on: each curve is probed at its own minimal legal side covering
	// this many points (64 for Hilbert/Moore/Z, 81 for Peano), so
	// predictor cost is independent of shard size.
	probePoints = 4096
)

// DefaultCurves is the candidate curve set: the ISSUE's
// hilbert/moore/peano/zorder/simple axis, with "simple" as the snake
// curve (the continuous baseline; row-major and scatter exist only as
// known-bad baselines and are never candidates — but a shard *starting*
// on one is still scored against these and tuned away).
func DefaultCurves() []string { return []string{"hilbert", "moore", "peano", "zorder", "snake"} }

// DefaultEpsilons is the candidate rebuild-threshold set.
func DefaultEpsilons() []float64 { return []float64{0.1, 0.2, 0.4} }

// Config configures a Tuner. The zero value resolves to the defaults
// above with backend tuning off.
type Config struct {
	// Threshold is the hysteresis threshold (<= 0 means
	// DefaultThreshold): minimum projected fractional win to republish.
	Threshold float64
	// MinSamples gates scoring and the realized-win check (<= 0 means
	// DefaultMinSamples).
	MinSamples uint64
	// EWMAAlpha smooths the profiles' cost averages.
	EWMAAlpha float64
	// Curves and Epsilons are the candidate axes (nil means
	// DefaultCurves/DefaultEpsilons).
	Curves   []string
	Epsilons []float64
	// Backends additionally considers switching a sim shard to the
	// native backend (and vice versa), projected through NativeSpeedup.
	Backends bool
	// NativeSpeedup is the prior wall-clock ratio for backend-switch
	// projections (<= 1 means DefaultNativeSpeedup).
	NativeSpeedup float64
	// OnRepublish, when non-nil, is invoked after every successful
	// republish, outside all tuner locks — the server uses it to
	// compact the shard's snapshot so the tuned choice survives
	// restarts.
	OnRepublish func(id string, spec engine.RetuneSpec)
}

func (c Config) resolved() Config {
	if c.Threshold <= 0 {
		c.Threshold = DefaultThreshold
	}
	if c.MinSamples == 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = DefaultEWMAAlpha
	}
	if c.Curves == nil {
		c.Curves = DefaultCurves()
	}
	if c.Epsilons == nil {
		c.Epsilons = DefaultEpsilons()
	}
	if c.NativeSpeedup <= 1 {
		c.NativeSpeedup = DefaultNativeSpeedup
	}
	return c
}

// Target is the shard surface the tuner drives; *engine.DynEngine
// implements it. The indirection keeps the hysteresis and backoff logic
// testable against scripted fakes.
type Target interface {
	// LayoutConfig reports the current curve/epsilon/backend.
	LayoutConfig() engine.RetuneSpec
	// Retune republishes the shard on a new configuration behind the
	// engine's own Quiesce barrier. The tuner NEVER holds any of its
	// locks across this call: Retune drains in-flight batches, and a
	// tuner lock held here would couple every shard's profile hot path
	// to one shard's drain.
	Retune(engine.RetuneSpec) error
	// Stats supplies mutation counters for the maintenance-cost model.
	Stats() engine.DynStats
	// SetProfile installs the tuner's batch observer.
	SetProfile(engine.ProfileFunc)
}

// pendingEval is the realized-win check armed by a republish. The
// check measures the same quantity the projection promised: a layout
// republish (curve/ε, backend unchanged) is verified against the
// shard's sampled model energy per request — wall-clock cannot see a
// placement change on either backend, the meter can — while a backend
// switch is verified against wall-clock per request, which is exactly
// what it claims to move.
type pendingEval struct {
	baseline  float64 // pre-republish EWMA in the check's domain
	projected float64 // projected fractional win
	batchesAt uint64  // profile batch count at republish
	energy    bool    // check energy/request instead of ns/request
}

// shardState is the tuner's per-shard bookkeeping; all fields are
// guarded by Tuner.mu except prof, which has its own leaf mutex.
type shardState struct {
	target Target
	prof   *Profile

	cooldown     uint64 // ticks left before scoring resumes
	cooldownBase uint64 // doubling backoff level
	pending      *pendingEval

	scored        uint64
	republishes   uint64
	hits, misses  uint64
	lastProjected float64
	lastRealized  float64
}

// Tuner runs the online layout-tuning loop over a set of adopted
// shards. All methods are safe for concurrent use.
type Tuner struct {
	cfg Config

	qualOnce sync.Once
	qualMu   sync.Mutex
	qual     map[string]float64

	mu     sync.Mutex
	shards map[string]*shardState
	ticks  uint64

	stop chan struct{}
	done chan struct{}
}

// New builds a tuner; call Adopt to hand it shards and either Start for
// the background loop or Tick to drive it manually.
func New(cfg Config) *Tuner {
	return &Tuner{cfg: cfg.resolved(), shards: map[string]*shardState{}}
}

// Adopt registers a shard under id and installs the profile observer on
// it. Re-adopting an id replaces the previous registration.
func (t *Tuner) Adopt(id string, target Target) {
	st := &shardState{target: target, prof: NewProfile(t.cfg.EWMAAlpha)}
	t.mu.Lock()
	t.shards[id] = st
	t.mu.Unlock()
	target.SetProfile(st.prof.Observe)
}

// Release forgets a shard and removes its profile observer.
func (t *Tuner) Release(id string) {
	t.mu.Lock()
	st := t.shards[id]
	delete(t.shards, id)
	t.mu.Unlock()
	if st != nil {
		st.target.SetProfile(nil)
	}
}

// Start runs Tick every interval (<= 0 means DefaultInterval) on a
// background goroutine until Stop. Starting a started tuner is a no-op.
func (t *Tuner) Start(interval time.Duration) {
	if interval <= 0 {
		interval = DefaultInterval
	}
	t.mu.Lock()
	if t.stop != nil {
		t.mu.Unlock()
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	t.stop, t.done = stop, done
	t.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.Tick()
			}
		}
	}()
}

// Stop halts the background loop and waits for an in-flight tick to
// finish. Stopping a stopped (or never started) tuner is a no-op.
func (t *Tuner) Stop() {
	t.mu.Lock()
	stop, done := t.stop, t.done
	t.stop, t.done = nil, nil
	t.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Tick runs one tuning round over every adopted shard: resolve pending
// realized-win checks, score candidates, and republish winners beating
// the hysteresis threshold. Republishes happen outside every tuner lock
// — Retune quiesces the shard, and holding a tuner lock across that
// drain would stall profile observers and other shards' ticks on one
// shard's in-flight batches.
func (t *Tuner) Tick() {
	type planned struct {
		id     string
		st     *shardState
		spec   engine.RetuneSpec
		win    float64
		base   float64
		energy bool
	}
	t.mu.Lock()
	t.ticks++
	snapshot := make(map[string]*shardState, len(t.shards))
	for id, st := range t.shards {
		snapshot[id] = st
	}
	t.mu.Unlock()

	var plans []planned
	for id, st := range snapshot {
		prof := st.prof.Snapshot()
		cur := st.target.LayoutConfig()
		stats := st.target.Stats()

		t.mu.Lock()
		metric := prof.NsPerRequest
		if st.pending != nil && st.pending.energy {
			metric = prof.EnergyPerRequest
		}
		if st.pending != nil && prof.Batches >= st.pending.batchesAt+t.cfg.MinSamples && metric > 0 {
			realized := 1 - metric/st.pending.baseline
			st.lastRealized = realized
			if realized < st.pending.projected*missFraction {
				st.misses++
				if st.cooldownBase < 2 {
					st.cooldownBase = 2
				} else if st.cooldownBase < 1<<20 {
					st.cooldownBase *= 2
				}
				st.cooldown = st.cooldownBase
			} else {
				st.hits++
				st.cooldownBase /= 2
			}
			st.pending = nil
		}
		skip := st.pending != nil || st.cooldown > 0 || prof.Batches < t.cfg.MinSamples ||
			prof.NsPerRequest <= 0 ||
			(exec.Normalize(cur.Backend) == exec.Sim && prof.Metered < t.cfg.MinSamples)
		if st.cooldown > 0 {
			st.cooldown--
		}
		t.mu.Unlock()
		if skip {
			continue
		}

		best, scored := t.score(cur, prof, stats)
		t.mu.Lock()
		st.scored += scored
		win := 0.0
		if best.cost > 0 {
			win = 1 - best.cost/t.project(cur, cur, prof, stats)
		}
		if win > t.cfg.Threshold {
			st.lastProjected = win
			pl := planned{id: id, st: st, spec: best.spec, win: win, base: prof.NsPerRequest}
			if exec.Normalize(best.spec.Backend) == exec.Normalize(cur.Backend) {
				pl.energy, pl.base = true, prof.EnergyPerRequest
			}
			plans = append(plans, pl)
		}
		t.mu.Unlock()
	}

	for _, pl := range plans {
		if err := pl.st.target.Retune(pl.spec); err != nil {
			continue
		}
		pl.st.prof.resetEWMA()
		t.mu.Lock()
		pl.st.republishes++
		prof := pl.st.prof.Snapshot()
		pl.st.pending = &pendingEval{baseline: pl.base, projected: pl.win, batchesAt: prof.Batches, energy: pl.energy}
		t.mu.Unlock()
		if t.cfg.OnRepublish != nil {
			t.cfg.OnRepublish(pl.id, pl.spec)
		}
	}
}

type candidate struct {
	spec engine.RetuneSpec
	cost float64
}

// score projects every candidate configuration's per-request cost and
// returns the cheapest, plus how many candidates were scored. Layout
// axes (curve × epsilon) are enumerated only for the sim backend —
// native kernels never read the placement, so a layout change cannot
// change native wall-clock and the honest projection is "no win".
func (t *Tuner) score(cur engine.RetuneSpec, prof ProfileSnapshot, stats engine.DynStats) (candidate, uint64) {
	var cands []engine.RetuneSpec
	curBackend := exec.Normalize(cur.Backend)
	if curBackend == exec.Sim {
		for _, c := range t.cfg.Curves {
			for _, eps := range t.cfg.Epsilons {
				cands = append(cands, engine.RetuneSpec{Curve: c, Epsilon: eps, Backend: exec.Sim})
			}
		}
		if t.cfg.Backends {
			cands = append(cands, engine.RetuneSpec{Curve: cur.Curve, Epsilon: cur.Epsilon, Backend: exec.Native})
		}
	} else if t.cfg.Backends {
		cands = append(cands, engine.RetuneSpec{Curve: cur.Curve, Epsilon: cur.Epsilon, Backend: exec.Sim})
	}
	best := candidate{spec: cur, cost: t.project(cur, cur, prof, stats)}
	for _, spec := range cands {
		if c := t.project(cur, spec, prof, stats); c < best.cost {
			best = candidate{spec: spec, cost: c}
		}
	}
	return best, uint64(len(cands))
}

// project estimates cand's serving cost for the profiled workload,
// anchored at the shard's measured EWMA (the calibration: the
// predictors only ever supply ratios between configurations, never
// absolute costs, and only the ratio of two projections is ever used).
// Layout candidates scale the anchor by the curve-quality ratio and the
// ε drift/maintenance model — a model-energy claim, verified by the
// realized-win check in the energy domain; backend switches apply the
// NativeSpeedup wall-clock prior and are verified in wall-clock.
func (t *Tuner) project(cur, cand engine.RetuneSpec, prof ProfileSnapshot, stats engine.DynStats) float64 {
	ns := prof.NsPerRequest
	curBackend, candBackend := exec.Normalize(cur.Backend), exec.Normalize(cand.Backend)
	if candBackend != curBackend {
		if candBackend == exec.Native {
			ns /= t.cfg.NativeSpeedup
		} else {
			ns *= t.cfg.NativeSpeedup
		}
	}
	if candBackend != exec.Sim {
		return ns
	}
	ratio := t.curveQuality(cand.Curve) / t.curveQuality(cur.Curve)
	ratio *= (1 + driftPenalty*cand.Epsilon) / (1 + driftPenalty*cur.Epsilon)
	ns *= ratio
	// Maintenance: rebuild amortization costs O(√n/ε) energy per
	// mutation; the measured per-mutation maintenance energy under the
	// current ε rescales by curε/candε, and the shard's own ns-per-energy
	// converts it to wall-clock. Shards that never mutate skip the term.
	muts := stats.Inserts + stats.Deletes
	if muts > 0 && stats.Engine.Requests > 0 && prof.EnergyPerRequest > 0 && cand.Epsilon > 0 && cur.Epsilon > 0 {
		maintPerMut := float64(stats.MigrateEnergy+stats.ParkEnergy) / float64(muts)
		nsPerEnergy := prof.NsPerRequest / prof.EnergyPerRequest
		mutRate := float64(muts) / float64(stats.Engine.Requests)
		ns += mutRate * maintPerMut * nsPerEnergy * (cur.Epsilon / cand.Epsilon)
	}
	return ns
}

// curveQuality returns the memoized quality factor of a curve: the
// sampled distance-bound constant times the alignment factor, probed on
// a fixed small grid (probePoints) so the cost is independent of shard
// size. Lower is better; only ratios between curves are ever used.
// Unknown curve names score +Inf-ishly high via a large sentinel so a
// typo in the candidate set can never win a retune.
func (t *Tuner) curveQuality(name string) float64 {
	t.qualOnce.Do(func() { t.qual = map[string]float64{} })
	t.qualMu.Lock()
	defer t.qualMu.Unlock()
	if q, ok := t.qual[name]; ok {
		return q
	}
	q := 1e18
	if c, err := sfc.ByName(name); err == nil {
		side := c.Side(probePoints)
		q = sfc.MeasureDistanceBoundSampled(c, side).Alpha * sfc.AlignmentFactor(c, side)
	}
	t.qual[name] = q
	return q
}

// Metrics aggregates the tuner's lifetime counters for /metrics.
type Metrics struct {
	// Shards is the number of adopted shards (live profiles).
	Shards int `json:"shards"`
	// CandidatesScored totals candidate configurations projected.
	CandidatesScored uint64 `json:"candidates_scored"`
	// Republishes totals successful Retune republishes; Hits and Misses
	// split the resolved realized-win checks.
	Republishes uint64 `json:"republishes"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	// ProjectedWin and RealizedWin average the most recent republish's
	// projected and measured fractional win over shards that have
	// republished — the live health check of the projection model.
	ProjectedWin float64 `json:"projected_win"`
	RealizedWin  float64 `json:"realized_win"`
	// Ticks counts tuning rounds.
	Ticks uint64 `json:"ticks"`
}

// Metrics returns the tuner's aggregate counters.
func (t *Tuner) Metrics() Metrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := Metrics{Shards: len(t.shards), Ticks: t.ticks}
	republished := 0
	for _, st := range t.shards {
		m.CandidatesScored += st.scored
		m.Republishes += st.republishes
		m.Hits += st.hits
		m.Misses += st.misses
		if st.republishes > 0 {
			republished++
			m.ProjectedWin += st.lastProjected
			m.RealizedWin += st.lastRealized
		}
	}
	if republished > 0 {
		m.ProjectedWin /= float64(republished)
		m.RealizedWin /= float64(republished)
	}
	return m
}

// ShardStatus is one shard's tuner state for status APIs.
type ShardStatus struct {
	// Republishes counts this shard's successful retunes.
	Republishes uint64 `json:"republishes"`
	// CooldownTicks is the backoff currently suppressing retunes.
	CooldownTicks uint64 `json:"cooldown_ticks"`
	// LastProjectedWin and LastRealizedWin compare the most recent
	// republish's projection against what the profile then measured
	// (zero until a republish resolves its check).
	LastProjectedWin float64 `json:"last_projected_win"`
	LastRealizedWin  float64 `json:"last_realized_win"`
	// Profile is the shard's current workload profile.
	Profile ProfileSnapshot `json:"profile"`
}

// Status reports one shard's tuner state.
func (t *Tuner) Status(id string) (ShardStatus, bool) {
	t.mu.Lock()
	st, ok := t.shards[id]
	if !ok {
		t.mu.Unlock()
		return ShardStatus{}, false
	}
	s := ShardStatus{
		Republishes:      st.republishes,
		CooldownTicks:    st.cooldown,
		LastProjectedWin: st.lastProjected,
		LastRealizedWin:  st.lastRealized,
	}
	prof := st.prof
	t.mu.Unlock()
	s.Profile = prof.Snapshot()
	return s, true
}
