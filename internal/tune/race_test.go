package tune

import (
	"sync"
	"testing"

	"spatialtree/internal/engine"
	"spatialtree/internal/exec"
	"spatialtree/internal/lca"
	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

// TestRepublishRace hammers a real DynEngine with concurrent serving,
// mutations, tuner ticks and status scrapes. Under -race it pins the
// lock discipline the package documents: republishes run outside every
// tuner lock, the profile observer is a leaf, and a Retune mid-batch or
// mid-mutation never corrupts the shard (every response stays
// well-formed).
func TestRepublishRace(t *testing.T) {
	r := rng.New(31)
	de, err := engine.NewDyn(tree.RandomAttachment(120, r),
		engine.DynOptions{Options: engine.Options{Backend: exec.Sim, Window: 8}, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Start on a known-bad curve so ticks genuinely republish during the
	// hammer, not just score.
	if err := de.Retune(engine.RetuneSpec{Curve: "scatter"}); err != nil {
		t.Fatal(err)
	}
	tu := New(Config{MinSamples: 2})
	tu.Adopt("d1", de)

	const rounds = 60
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // server goroutine: queries
		defer wg.Done()
		qr := rng.New(32)
		for i := 0; i < rounds; i++ {
			n := de.N()
			vals := make([]int64, n)
			if res := de.SubmitTreefix(vals, treefix.Add).Wait(); res.Err == nil && len(res.Sums) == 0 {
				t.Error("empty treefix result")
			}
			qs := []lca.Query{{U: qr.Intn(n), V: qr.Intn(n)}}
			if res := de.SubmitLCA(qs).Wait(); res.Err == nil && len(res.Answers) != 1 {
				t.Error("malformed lca result")
			}
		}
	}()
	go func() { // mutator goroutine
		defer wg.Done()
		mr := rng.New(33)
		for i := 0; i < rounds; i++ {
			if _, err := de.InsertLeaf(mr.Intn(de.N())); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // tuner goroutine
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			tu.Tick()
		}
	}()
	go func() { // operator goroutine: metrics + status scrapes
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			_ = tu.Metrics()
			if _, ok := tu.Status("d1"); !ok {
				t.Error("adopted shard lost its status mid-run")
				return
			}
		}
	}()
	wg.Wait()

	if _, err := de.Tree(); err != nil {
		t.Fatalf("shard tree corrupt after hammer: %v", err)
	}
	// The shard must have been tuned off the scatter seed at some point.
	if de.Stats().Retunes == 0 {
		t.Fatal("no republish happened during the hammer; the race surface went unexercised")
	}
	tu.Release("d1")
}
