// Package tune closes the loop on shadow metering: it folds the
// engine's per-batch profiles (internal/engine.BatchProfile) into
// per-shard workload profiles and periodically re-picks each shard's
// layout configuration — space-filling curve × rebuild threshold ε,
// and sim-vs-native execution backend — republishing the winner through
// DynEngine.Retune when the projected win beats a hysteresis threshold.
//
// The paper's central result is that the layout choice swings model
// energy by large constant factors; since PR 5 the shadow meter samples
// each shard's true model cost, and this package is the consumer that
// was missing. Candidate layouts are scored with the sfc.Measure*
// predictors (distance-bound constant × alignment factor, probed on a
// small fixed grid) calibrated against the shard's own sampled cost:
// the predictors supply only *ratios* between curves, and the shard's
// EWMA of sampled energy and wall-clock per request anchors them to
// reality. The vertex order is not a search axis: dynlayout maintains
// light-first placements exclusively (the order the paper's bounds are
// proven for), so the tuner's space is curve × ε × backend.
//
// Republishes are guarded two ways against thrash. First, hysteresis: a
// candidate must project at least Config.Threshold fractional win over
// the current configuration, so flipping back immediately after a
// switch can never look profitable. Second, backoff: after each
// republish the tuner measures the realized win over the next
// MinSamples batches — in the domain the candidate's claim lives in:
// layout republishes against sampled model energy per request (the
// quantity placement actually moves), backend switches against
// wall-clock per request — and a republish whose realized win misses
// half its projection doubles a per-shard cooldown that suppresses further
// republishes — under an adversarially alternating workload the
// cooldown grows geometrically and total republishes stay logarithmic
// in elapsed ticks (see the hysteresis property test).
package tune

import (
	"math/bits"
	"sync"

	"spatialtree/internal/engine"
)

// sizeBuckets is the number of power-of-two batch-size histogram
// buckets: bucket i counts batches with 2^(i-1) < size <= ... — in
// practice, bucket = bit length of the batch size, clamped.
const sizeBuckets = 12

// Profile accumulates one shard's workload profile from the engine's
// batch observer: request mix, batch-size histogram, and EWMAs of
// wall-clock and sampled model cost per request. Observe is installed
// as the shard's engine.ProfileFunc and runs on batch goroutines, so it
// takes only its own leaf mutex and stays cheap.
type Profile struct {
	alpha float64 // EWMA smoothing factor in (0, 1]

	mu       sync.Mutex
	batches  uint64
	requests uint64
	bottomUp uint64
	topDown  uint64
	lca      uint64
	minCut   uint64
	expr     uint64
	lcaQs    uint64
	sizeHist [sizeBuckets]uint64

	metered    uint64
	mismatches uint64
	// EWMAs; zero means "no sample yet" (the first sample seeds).
	nsPerReq     float64
	energyPerReq float64
	depthPerReq  float64
}

// NewProfile returns an empty profile with the given EWMA smoothing
// factor (<= 0 or > 1 means DefaultEWMAAlpha).
func NewProfile(alpha float64) *Profile {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEWMAAlpha
	}
	return &Profile{alpha: alpha}
}

// Observe folds one dispatched batch into the profile. It is the
// engine.ProfileFunc the tuner installs on adopted shards.
func (p *Profile) Observe(bp engine.BatchProfile) {
	if bp.Requests <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.batches++
	p.requests += uint64(bp.Requests)
	p.bottomUp += uint64(bp.BottomUp)
	p.topDown += uint64(bp.TopDown)
	p.lca += uint64(bp.LCA)
	p.minCut += uint64(bp.MinCut)
	p.expr += uint64(bp.Expr)
	p.lcaQs += uint64(bp.LCAQueries)
	b := bits.Len(uint(bp.Requests))
	if b >= sizeBuckets {
		b = sizeBuckets - 1
	}
	p.sizeHist[b]++

	perReq := 1 / float64(bp.Requests)
	p.nsPerReq = p.ewma(p.nsPerReq, float64(bp.Elapsed.Nanoseconds())*perReq)
	if bp.Metered {
		p.metered++
		p.mismatches += bp.Mismatches
		p.energyPerReq = p.ewma(p.energyPerReq, float64(bp.Cost.Energy)*perReq)
		p.depthPerReq = p.ewma(p.depthPerReq, float64(bp.Cost.Depth)*perReq)
	}
}

// ewma folds sample into the running average; a zero average seeds.
func (p *Profile) ewma(avg, sample float64) float64 {
	if avg == 0 {
		return sample
	}
	return avg + p.alpha*(sample-avg)
}

// resetEWMA clears the running cost averages (counters stay). The tuner
// calls it right after a republish so the realized-win measurement is
// not contaminated by pre-republish samples.
func (p *Profile) resetEWMA() {
	p.mu.Lock()
	p.nsPerReq, p.energyPerReq, p.depthPerReq = 0, 0, 0
	p.mu.Unlock()
}

// ProfileSnapshot is a point-in-time copy of a Profile, safe to read
// without synchronization.
type ProfileSnapshot struct {
	// Batches and Requests count dispatched batches and the requests in
	// them; the per-kind counts below sum to Requests.
	Batches  uint64 `json:"batches"`
	Requests uint64 `json:"requests"`
	BottomUp uint64 `json:"bottom_up"`
	TopDown  uint64 `json:"top_down"`
	LCA      uint64 `json:"lca"`
	MinCut   uint64 `json:"min_cut"`
	Expr     uint64 `json:"expr"`
	// LCAQueries counts individual queries inside coalesced LCA runs.
	LCAQueries uint64 `json:"lca_queries"`
	// SizeHist is the batch-size histogram: bucket i counts batches
	// whose size has bit length i (i.e. in [2^(i-1), 2^i)).
	SizeHist []uint64 `json:"size_hist"`
	// Metered counts batches that carried a model-cost sample (every
	// batch on a sim backend, the shadow-sampled ones on native);
	// Mismatches totals their shadow-validation failures.
	Metered    uint64 `json:"metered"`
	Mismatches uint64 `json:"mismatches"`
	// NsPerRequest, EnergyPerRequest and DepthPerRequest are the EWMAs
	// of serving wall-clock and sampled model cost per request.
	NsPerRequest     float64 `json:"ns_per_request"`
	EnergyPerRequest float64 `json:"energy_per_request"`
	DepthPerRequest  float64 `json:"depth_per_request"`
}

// Snapshot copies the profile's current state.
func (p *Profile) Snapshot() ProfileSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	hist := make([]uint64, sizeBuckets)
	copy(hist, p.sizeHist[:])
	return ProfileSnapshot{
		Batches:          p.batches,
		Requests:         p.requests,
		BottomUp:         p.bottomUp,
		TopDown:          p.topDown,
		LCA:              p.lca,
		MinCut:           p.minCut,
		Expr:             p.expr,
		LCAQueries:       p.lcaQs,
		SizeHist:         hist,
		Metered:          p.metered,
		Mismatches:       p.mismatches,
		NsPerRequest:     p.nsPerReq,
		EnergyPerRequest: p.energyPerReq,
		DepthPerRequest:  p.depthPerReq,
	}
}
