package tune

import (
	"math"
	"sync"
	"testing"
	"time"

	"spatialtree/internal/engine"
	"spatialtree/internal/exec"
	"spatialtree/internal/machine"
)

func machineCost(energy, depth int64) machine.Cost {
	return machine.Cost{Energy: energy, Messages: energy, Depth: depth}
}

// fakeShard is a scripted Target: the test controls what the tuner sees
// (layout config, stats) and records what the tuner does (retunes,
// profile installation).
type fakeShard struct {
	mu      sync.Mutex
	spec    engine.RetuneSpec
	stats   engine.DynStats
	retunes []engine.RetuneSpec
	applied bool // whether Retune updates spec (false = adversarial world)
	profile engine.ProfileFunc
}

func (f *fakeShard) LayoutConfig() engine.RetuneSpec {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.spec
}

func (f *fakeShard) Retune(spec engine.RetuneSpec) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.retunes = append(f.retunes, spec)
	if f.applied {
		f.spec = spec
	}
	return nil
}

func (f *fakeShard) Stats() engine.DynStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *fakeShard) SetProfile(fn engine.ProfileFunc) {
	f.mu.Lock()
	f.profile = fn
	f.mu.Unlock()
}

// feed pushes n metered batches with the given per-request wall-clock
// and model energy through the shard's installed profile observer. The
// two axes matter separately: layout republishes are verified against
// energy/request, backend switches against ns/request.
func (f *fakeShard) feed(t *testing.T, n int, nsPerReq, energyPerReq float64) {
	t.Helper()
	f.mu.Lock()
	fn := f.profile
	f.mu.Unlock()
	if fn == nil {
		t.Fatal("no profile observer installed")
	}
	for i := 0; i < n; i++ {
		fn(engine.BatchProfile{
			Requests: 4,
			BottomUp: 4,
			Elapsed:  time.Duration(4 * nsPerReq),
			Metered:  true,
			Cost:     machineCost(int64(4*energyPerReq), 100),
		})
	}
}

func TestProfileObserve(t *testing.T) {
	p := NewProfile(0.5)
	p.Observe(engine.BatchProfile{Requests: 3, BottomUp: 2, LCA: 1, LCAQueries: 5,
		Elapsed: 300, Metered: true, Cost: machineCost(30, 9)})
	p.Observe(engine.BatchProfile{Requests: 1, TopDown: 1, Elapsed: 500})
	p.Observe(engine.BatchProfile{Requests: 0}) // empty batches are ignored
	s := p.Snapshot()
	if s.Batches != 2 || s.Requests != 4 {
		t.Fatalf("batches=%d requests=%d, want 2/4", s.Batches, s.Requests)
	}
	if s.BottomUp != 2 || s.TopDown != 1 || s.LCA != 1 || s.LCAQueries != 5 {
		t.Fatalf("kernel mix = %+v", s)
	}
	if s.Metered != 1 {
		t.Fatalf("metered = %d, want 1", s.Metered)
	}
	// EWMA: first sample seeds (300/3 = 100), second folds with α=0.5:
	// 100 + 0.5*(500-100) = 300.
	if s.NsPerRequest != 300 {
		t.Fatalf("ns/request EWMA = %v, want 300", s.NsPerRequest)
	}
	if s.EnergyPerRequest != 10 || s.DepthPerRequest != 3 {
		t.Fatalf("energy/depth per request = %v/%v, want 10/3", s.EnergyPerRequest, s.DepthPerRequest)
	}
	// Bucket of a 3-request batch is bit length 2; of a 1-request, 1.
	if s.SizeHist[2] != 1 || s.SizeHist[1] != 1 {
		t.Fatalf("size hist = %v", s.SizeHist)
	}
	p.resetEWMA()
	if s := p.Snapshot(); s.NsPerRequest != 0 || s.Batches != 2 {
		t.Fatalf("resetEWMA: ns=%v batches=%d, want 0/2", s.NsPerRequest, s.Batches)
	}
}

func TestCurveQualityOrdersKnownCurves(t *testing.T) {
	tu := New(Config{})
	qh, qz, qs := tu.curveQuality("hilbert"), tu.curveQuality("zorder"), tu.curveQuality("scatter")
	if !(qh > 0 && qz > 0 && qs > 0) {
		t.Fatalf("non-positive qualities: h=%v z=%v s=%v", qh, qz, qs)
	}
	// The paper's ordering: a distance-bound aligned curve beats Z-order
	// (unbounded worst-case gaps), and anything beats random scatter.
	if qh >= qz {
		t.Fatalf("quality(hilbert)=%v not better than quality(zorder)=%v", qh, qz)
	}
	if qz >= qs {
		t.Fatalf("quality(zorder)=%v not better than quality(scatter)=%v", qz, qs)
	}
	if q := tu.curveQuality("no-such-curve"); q < 1e17 {
		t.Fatalf("unknown curve got a competitive quality %v", q)
	}
	// Memoized: same answer, no recompute drift.
	if tu.curveQuality("hilbert") != qh {
		t.Fatal("curveQuality not stable across calls")
	}
}

func TestTickRepublishesBadLayout(t *testing.T) {
	f := &fakeShard{spec: engine.RetuneSpec{Curve: "scatter", Epsilon: 0.2, Backend: exec.Sim}, applied: true}
	var published []string
	tu := New(Config{MinSamples: 2, OnRepublish: func(id string, spec engine.RetuneSpec) {
		published = append(published, id+":"+spec.Curve)
	}})
	tu.Adopt("d1", f)
	f.feed(t, 3, 1000, 1000)
	tu.Tick()
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.retunes) != 1 {
		t.Fatalf("retunes = %v, want exactly one", f.retunes)
	}
	if got := f.retunes[0].Curve; got == "scatter" || got == "" {
		t.Fatalf("republished onto %q, want a real candidate curve", got)
	}
	if f.retunes[0].Backend != exec.Sim {
		t.Fatalf("layout-only tuning switched backend to %q", f.retunes[0].Backend)
	}
	if len(published) != 1 || published[0] != "d1:"+f.retunes[0].Curve {
		t.Fatalf("OnRepublish saw %v", published)
	}
	m := tu.Metrics()
	if m.Republishes != 1 || m.CandidatesScored == 0 || m.Ticks != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	st, ok := tu.Status("d1")
	if !ok || st.Republishes != 1 || st.LastProjectedWin <= 0 {
		t.Fatalf("status = %+v ok=%v", st, ok)
	}
}

func TestTickSkipsGoodLayoutAndStarvedShards(t *testing.T) {
	good := &fakeShard{spec: engine.RetuneSpec{Curve: "hilbert", Epsilon: 0.2, Backend: exec.Sim}, applied: true}
	starved := &fakeShard{spec: engine.RetuneSpec{Curve: "scatter", Epsilon: 0.2, Backend: exec.Sim}, applied: true}
	tu := New(Config{MinSamples: 4})
	tu.Adopt("good", good)
	tu.Adopt("starved", starved)
	good.feed(t, 6, 1000, 1000)
	starved.feed(t, 2, 1000, 1000) // below MinSamples
	tu.Tick()
	if n := len(good.retunes); n != 0 {
		t.Fatalf("a hilbert shard was retuned %d times; hysteresis should hold it", n)
	}
	if n := len(starved.retunes); n != 0 {
		t.Fatalf("an under-sampled shard was retuned %d times", n)
	}
}

func TestNativeShardsGetNoLayoutCandidates(t *testing.T) {
	f := &fakeShard{spec: engine.RetuneSpec{Curve: "scatter", Epsilon: 0.2, Backend: exec.Native}, applied: true}
	tu := New(Config{MinSamples: 2})
	tu.Adopt("d1", f)
	f.feed(t, 4, 1000, 1000)
	tu.Tick()
	if len(f.retunes) != 0 {
		t.Fatalf("native shard retuned (%v): native kernels ignore the placement, an honest projection has no win", f.retunes)
	}
	if m := tu.Metrics(); m.CandidatesScored != 0 {
		t.Fatalf("scored %d layout candidates for a native shard", m.CandidatesScored)
	}
}

func TestBackendSwitchCandidate(t *testing.T) {
	// With Backends on, a sim shard on an already-good curve can still
	// win big by switching to native (the NativeSpeedup prior).
	f := &fakeShard{spec: engine.RetuneSpec{Curve: "hilbert", Epsilon: 0.2, Backend: exec.Sim}, applied: true}
	tu := New(Config{MinSamples: 2, Backends: true})
	tu.Adopt("d1", f)
	f.feed(t, 4, 1000, 1000)
	tu.Tick()
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.retunes) != 1 || f.retunes[0].Backend != exec.Native {
		t.Fatalf("retunes = %v, want one switch to native", f.retunes)
	}
}

// TestRealizedWinHitAndMiss drives both arms of the post-republish
// check: a realized win keeps the shard hot, a miss arms the doubling
// cooldown.
func TestRealizedWinHitAndMiss(t *testing.T) {
	f := &fakeShard{spec: engine.RetuneSpec{Curve: "scatter", Epsilon: 0.2, Backend: exec.Sim}, applied: true}
	tu := New(Config{MinSamples: 2})
	tu.Adopt("d1", f)
	f.feed(t, 3, 1000, 1000)
	tu.Tick() // republishes, arms the pending eval
	if len(f.retunes) != 1 {
		t.Fatalf("retunes = %v, want 1", f.retunes)
	}
	// The retune genuinely helped: the layout republish is verified in
	// the energy domain, and the sampled model energy collapses — the
	// check records a hit and no cooldown. (Wall-clock staying flat is
	// exactly the sim-backend reality: placement moves energy, not ns.)
	f.feed(t, 3, 1000, 10)
	tu.Tick()
	m := tu.Metrics()
	if m.Hits != 1 || m.Misses != 0 {
		t.Fatalf("after realized win: hits=%d misses=%d", m.Hits, m.Misses)
	}
	if m.RealizedWin <= 0 || m.ProjectedWin <= 0 {
		t.Fatalf("realized/projected win not reported: %+v", m)
	}
	st, _ := tu.Status("d1")
	if st.CooldownTicks != 0 {
		t.Fatalf("cooldown %d after a hit", st.CooldownTicks)
	}

	// Second shard: the republish does not help at all -> miss, cooldown.
	g := &fakeShard{spec: engine.RetuneSpec{Curve: "scatter", Epsilon: 0.2, Backend: exec.Sim}, applied: false}
	tu.Adopt("d2", g)
	g.feed(t, 3, 1000, 1000)
	tu.Tick()
	if len(g.retunes) != 1 {
		t.Fatalf("d2 retunes = %v, want 1", g.retunes)
	}
	g.feed(t, 3, 1000, 1000) // cost unchanged: realized win 0
	tu.Tick()
	if m := tu.Metrics(); m.Misses != 1 {
		t.Fatalf("after missed projection: misses=%d", m.Misses)
	}
	st, _ = tu.Status("d2")
	if st.CooldownTicks == 0 {
		t.Fatal("no cooldown after a missed projection")
	}
	if st.LastRealizedWin > 0.01 {
		t.Fatalf("realized win = %v on an unchanged workload", st.LastRealizedWin)
	}
}

// TestHysteresisBoundsRepublishes is the anti-thrash property test: an
// adversarial workload where every republish's projected win evaporates
// (the world stays bad no matter what the tuner picks) must see the
// doubling cooldown push republishes to a logarithmic trickle, not a
// per-tick flip-flop.
func TestHysteresisBoundsRepublishes(t *testing.T) {
	f := &fakeShard{spec: engine.RetuneSpec{Curve: "scatter", Epsilon: 0.2, Backend: exec.Sim}, applied: false}
	tu := New(Config{MinSamples: 2})
	tu.Adopt("d1", f)
	const ticks = 400
	for i := 0; i < ticks; i++ {
		f.feed(t, 3, 1000, 1000) // always enough samples, never any improvement
		tu.Tick()
	}
	f.mu.Lock()
	n := len(f.retunes)
	f.mu.Unlock()
	// Each miss doubles the cooldown (2, 4, 8, ...), and a republish
	// additionally spends a tick arming and a tick resolving its check,
	// so republishes over T ticks are <= log2(T) + a small constant.
	bound := int(math.Log2(ticks)) + 4
	if n > bound {
		t.Fatalf("%d republishes over %d adversarial ticks, want <= %d (thrash)", n, ticks, bound)
	}
	if n == 0 {
		t.Fatal("no republishes at all; the adversarial scenario never engaged")
	}
	if m := tu.Metrics(); m.Misses < uint64(n)-1 {
		t.Fatalf("republishes=%d but misses=%d; checks not resolving", n, m.Misses)
	}
}

func TestAdoptReleaseInstallsProfile(t *testing.T) {
	f := &fakeShard{spec: engine.RetuneSpec{Curve: "hilbert", Epsilon: 0.2, Backend: exec.Sim}}
	tu := New(Config{})
	tu.Adopt("d1", f)
	f.mu.Lock()
	installed := f.profile != nil
	f.mu.Unlock()
	if !installed {
		t.Fatal("Adopt did not install the profile observer")
	}
	tu.Release("d1")
	f.mu.Lock()
	removed := f.profile == nil
	f.mu.Unlock()
	if !removed {
		t.Fatal("Release left the profile observer installed")
	}
	if _, ok := tu.Status("d1"); ok {
		t.Fatal("released shard still has status")
	}
}

func TestStartStop(t *testing.T) {
	f := &fakeShard{spec: engine.RetuneSpec{Curve: "hilbert", Epsilon: 0.2, Backend: exec.Sim}}
	tu := New(Config{})
	tu.Adopt("d1", f)
	tu.Start(time.Millisecond)
	tu.Start(time.Millisecond) // double-start is a no-op
	deadline := time.Now().Add(2 * time.Second)
	for tu.Metrics().Ticks == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	tu.Stop()
	tu.Stop() // double-stop is a no-op
	n := tu.Metrics().Ticks
	time.Sleep(5 * time.Millisecond)
	if tu.Metrics().Ticks != n {
		t.Fatal("ticks kept advancing after Stop")
	}
}
