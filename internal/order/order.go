// Package order computes linear vertex orders of rooted trees. The
// paper's central layout (Section III-A) is the light-first order: a
// depth-first pre-order that visits the children of every vertex in
// increasing subtree-size order, so that every child c_i of a vertex v
// sits at position 1 + pos(v) + Σ_{j<i} s(c_j). The package also provides
// the baseline orders the paper compares against (breadth-first,
// depth-first/heavy-first, random), and a validator for the light-first
// neighborhood condition.
package order

import (
	"sort"

	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
)

// Order assigns every vertex of a tree a distinct linear position.
type Order struct {
	// Name identifies how the order was built (for reports).
	Name string
	// Rank maps vertex id to linear position in [0, n).
	Rank []int
}

// Inverse returns the position-to-vertex permutation.
func (o Order) Inverse() []int {
	inv := make([]int, len(o.Rank))
	for v, r := range o.Rank {
		inv[r] = v
	}
	return inv
}

// IsPermutation reports whether Rank is a bijection onto [0, n).
func (o Order) IsPermutation() bool {
	seen := make([]bool, len(o.Rank))
	for _, r := range o.Rank {
		if r < 0 || r >= len(o.Rank) || seen[r] {
			return false
		}
		seen[r] = true
	}
	return true
}

// fromSequence builds an Order from a position-to-vertex sequence.
func fromSequence(name string, seq []int) Order {
	rank := make([]int, len(seq))
	for pos, v := range seq {
		rank[v] = pos
	}
	return Order{Name: name, Rank: rank}
}

// LightFirst returns the paper's light-first (smallest-first) order: DFS
// pre-order visiting children by ascending subtree size, ties broken by
// vertex id. This is exactly the linear order whose neighborhoods satisfy
// the Section III-A condition, because a pre-order places c_i at
// 1 + pos(v) + Σ_{j<i} s(c_j).
func LightFirst(t *tree.Tree) Order {
	size := t.SubtreeSizes()
	return dfsBySize(t, "light-first", size, false)
}

// HeavyFirst returns the mirror order (children by descending subtree
// size). It is an ablation baseline: Lemma 2 shows the light-first
// arrangement minimizes the layout energy bound, and heavy-first realizes
// the opposite extreme while keeping the same DFS structure.
func HeavyFirst(t *tree.Tree) Order {
	size := t.SubtreeSizes()
	return dfsBySize(t, "heavy-first", size, true)
}

func dfsBySize(t *tree.Tree, name string, size []int, descending bool) Order {
	n := t.N()
	seq := make([]int, 0, n)
	if n == 0 {
		return fromSequence(name, seq)
	}
	stack := make([]int, 0, 64)
	stack = append(stack, t.Root())
	var buf []int
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		seq = append(seq, v)
		buf = append(buf[:0], t.Children(v)...)
		sort.Slice(buf, func(i, j int) bool {
			si, sj := size[buf[i]], size[buf[j]]
			if si != sj {
				if descending {
					return si > sj
				}
				return si < sj
			}
			return buf[i] < buf[j]
		})
		// Push reversed so the first child pops first.
		for i := len(buf) - 1; i >= 0; i-- {
			stack = append(stack, buf[i])
		}
	}
	return fromSequence(name, seq)
}

// DFS returns the depth-first pre-order with children in their natural
// (CSR) order — the naive baseline from Section III's introduction.
func DFS(t *tree.Tree) Order {
	return fromSequence("dfs", t.PreOrder())
}

// BFS returns the breadth-first order — the paper's Ω(√n)-average-
// distance example on perfect binary trees.
func BFS(t *tree.Tree) Order {
	return fromSequence("bfs", t.BFSOrder())
}

// Random returns a uniformly random order; combined with any curve this
// behaves like a fully scattered (PRAM-style) placement.
func Random(t *tree.Tree, r *rng.RNG) Order {
	return fromSequence("random", r.Perm(t.N()))
}

// Identity returns the order that places vertex v at position v.
func Identity(t *tree.Tree) Order {
	seq := make([]int, t.N())
	for i := range seq {
		seq[i] = i
	}
	return fromSequence("identity", seq)
}

// ByName builds the named order ("light-first", "heavy-first", "dfs",
// "bfs", "random", "identity"). The rng is only used for "random".
func ByName(name string, t *tree.Tree, r *rng.RNG) (Order, bool) {
	switch name {
	case "light-first":
		return LightFirst(t), true
	case "heavy-first":
		return HeavyFirst(t), true
	case "dfs":
		return DFS(t), true
	case "bfs":
		return BFS(t), true
	case "random":
		return Random(t, r), true
	case "identity":
		return Identity(t), true
	}
	return Order{}, false
}

// Names lists the orders ByName accepts, in report order.
func Names() []string {
	return []string{"light-first", "heavy-first", "dfs", "bfs", "random", "identity"}
}

// IsLightFirst validates the Section III-A neighborhood condition for
// every vertex: sorting the children of v by their positions, child
// subtree sizes must be non-decreasing, the first child must sit at
// pos(v) + 1, and each subsequent child at the previous child's position
// plus the previous child's subtree size. (Ties in subtree size make the
// light-first order non-unique; this validator accepts every valid
// arrangement.)
func IsLightFirst(t *tree.Tree, o Order) bool {
	if len(o.Rank) != t.N() {
		return false
	}
	if t.N() == 0 {
		return true
	}
	if !o.IsPermutation() {
		return false
	}
	size := t.SubtreeSizes()
	buf := make([]int, 0, 16)
	for v := 0; v < t.N(); v++ {
		buf = append(buf[:0], t.Children(v)...)
		if len(buf) == 0 {
			continue
		}
		sort.Slice(buf, func(i, j int) bool { return o.Rank[buf[i]] < o.Rank[buf[j]] })
		want := o.Rank[v] + 1
		prevSize := 0
		for _, c := range buf {
			if size[c] < prevSize {
				return false // not ascending by subtree size
			}
			if o.Rank[c] != want {
				return false
			}
			want += size[c]
			prevSize = size[c]
		}
	}
	return true
}
