package order

import (
	"testing"
	"testing/quick"

	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
)

func testTrees(r *rng.RNG) []*tree.Tree {
	return []*tree.Tree{
		tree.Path(13),
		tree.Star(13),
		tree.PerfectBinary(5),
		tree.Caterpillar(17),
		tree.Broom(21),
		tree.Comb(5, 4),
		tree.RandomAttachment(100, r),
		tree.PreferentialAttachment(80, r),
		tree.RandomBoundedDegree(90, 2, r),
		tree.Yule(40, r),
	}
}

func TestAllOrdersArePermutations(t *testing.T) {
	r := rng.New(1)
	for _, tr := range testTrees(r) {
		for _, name := range Names() {
			o, ok := ByName(name, tr, r)
			if !ok {
				t.Fatalf("ByName(%q) not found", name)
			}
			if !o.IsPermutation() {
				t.Errorf("%s on n=%d: not a permutation", name, tr.N())
			}
			if o.Name != name {
				t.Errorf("order name %q != requested %q", o.Name, name)
			}
		}
	}
	if _, ok := ByName("bogus", tree.Path(3), r); ok {
		t.Error("ByName(bogus) succeeded")
	}
}

func TestLightFirstSatisfiesDefinition(t *testing.T) {
	r := rng.New(2)
	for _, tr := range testTrees(r) {
		o := LightFirst(tr)
		if !IsLightFirst(tr, o) {
			t.Errorf("LightFirst on n=%d fails its own validator", tr.N())
		}
	}
}

func TestLightFirstQuick(t *testing.T) {
	f := func(seed uint64, rawN uint16) bool {
		n := 1 + int(rawN)%300
		r := rng.New(seed)
		tr := tree.PreferentialAttachment(n, r)
		return IsLightFirst(tr, LightFirst(tr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidatorRejectsOtherOrders(t *testing.T) {
	r := rng.New(3)
	tr := tree.RandomAttachment(60, r)
	for _, o := range []Order{BFS(tr), Random(tr, r)} {
		if IsLightFirst(tr, o) {
			t.Errorf("validator accepted %s order", o.Name)
		}
	}
	// Heavy-first has the right DFS-block structure but the wrong child
	// order whenever sibling sizes differ; use a tree where they do.
	cat := tree.Caterpillar(16)
	if IsLightFirst(cat, HeavyFirst(cat)) {
		t.Error("validator accepted heavy-first on a caterpillar")
	}
}

func TestValidatorRejectsCorruption(t *testing.T) {
	r := rng.New(4)
	tr := tree.RandomAttachment(50, r)
	o := LightFirst(tr)
	// Swap two ranks: must break the condition (with overwhelming
	// probability there is a unique light-first order here; verify the
	// specific swap breaks it).
	o.Rank[3], o.Rank[7] = o.Rank[7], o.Rank[3]
	if IsLightFirst(tr, o) {
		t.Error("validator accepted a corrupted order")
	}
	// Wrong length must be rejected.
	short := Order{Name: "x", Rank: make([]int, tr.N()-1)}
	if IsLightFirst(tr, short) {
		t.Error("validator accepted wrong-length order")
	}
	// Non-permutation must be rejected.
	bad := LightFirst(tr)
	bad.Rank[0] = bad.Rank[1]
	if IsLightFirst(tr, bad) {
		t.Error("validator accepted non-permutation")
	}
}

func TestLightFirstRootFirst(t *testing.T) {
	r := rng.New(5)
	for _, tr := range testTrees(r) {
		o := LightFirst(tr)
		if o.Rank[tr.Root()] != 0 {
			t.Errorf("light-first: root at position %d", o.Rank[tr.Root()])
		}
	}
}

func TestLightFirstSubtreesContiguous(t *testing.T) {
	// Each subtree must occupy the contiguous range
	// [pos(v), pos(v)+s(v)-1] — the property the LCA algorithm's subtree
	// ranges rely on (Section VI-C).
	r := rng.New(6)
	tr := tree.PreferentialAttachment(200, r)
	o := LightFirst(tr)
	size := tr.SubtreeSizes()
	inv := o.Inverse()
	var check func(v int) (lo, hi int)
	check = func(v int) (int, int) {
		lo, hi := o.Rank[v], o.Rank[v]
		for _, c := range tr.Children(v) {
			clo, chi := check(c)
			if clo < lo {
				lo = clo
			}
			if chi > hi {
				hi = chi
			}
		}
		if hi-lo+1 != size[v] || lo != o.Rank[v] {
			t.Fatalf("subtree of %d spans [%d,%d], size %d, pos %d",
				v, lo, hi, size[v], o.Rank[v])
		}
		return lo, hi
	}
	check(tr.Root())
	_ = inv
}

func TestHeavyFirstIsReverseSibling(t *testing.T) {
	// On a star all subtree sizes tie, so heavy-first == light-first.
	st := tree.Star(10)
	lf, hf := LightFirst(st), HeavyFirst(st)
	for v := range lf.Rank {
		if lf.Rank[v] != hf.Rank[v] {
			t.Fatalf("star: light and heavy first differ at %d", v)
		}
	}
}

func TestBFSOrderProperty(t *testing.T) {
	tr := tree.PerfectBinary(5)
	o := BFS(tr)
	depth := tr.Depths()
	// Positions must be sorted by depth.
	inv := o.Inverse()
	prev := -1
	for _, v := range inv {
		if depth[v] < prev {
			t.Fatal("bfs order not level-monotone")
		}
		prev = depth[v]
	}
}

func TestIdentity(t *testing.T) {
	tr := tree.Path(5)
	o := Identity(tr)
	for v, r := range o.Rank {
		if v != r {
			t.Fatalf("identity rank[%d] = %d", v, r)
		}
	}
}

func TestInverse(t *testing.T) {
	r := rng.New(7)
	tr := tree.RandomAttachment(40, r)
	o := Random(tr, r)
	inv := o.Inverse()
	for v, rk := range o.Rank {
		if inv[rk] != v {
			t.Fatalf("inverse broken at %d", v)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	empty := tree.MustFromParents(nil)
	if o := LightFirst(empty); len(o.Rank) != 0 || !IsLightFirst(empty, o) {
		t.Error("light-first on empty tree broken")
	}
	single := tree.Path(1)
	o := LightFirst(single)
	if len(o.Rank) != 1 || o.Rank[0] != 0 || !IsLightFirst(single, o) {
		t.Error("light-first on single vertex broken")
	}
}
