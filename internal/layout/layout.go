// Package layout places linearly ordered trees onto the two-dimensional
// processor grid of the spatial computer model and measures the energy of
// tree messaging kernels on the resulting placement. This is the
// measurement side of Sections III-A to III-C of the paper: Theorem 1
// (light-first order on a distance-bound curve makes the local messaging
// kernel cost O(n) energy) and Theorem 2 (the same holds on the Z curve)
// become checkable statements about Placement values.
package layout

import (
	"fmt"
	"math"

	"spatialtree/internal/order"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

// Placement embeds an ordered tree in a side×side grid: vertex v occupies
// the grid point Curve.XY(Order.Rank[v], Side).
type Placement struct {
	Tree  *tree.Tree
	Order order.Order
	Curve sfc.Curve
	Side  int
	// x, y cache the grid coordinates per vertex.
	x, y []int32
}

// New computes the placement of t under the given order and curve. The
// grid side is the smallest legal side for the curve that fits all
// vertices (the spatial model's √n × √n grid, rounded up to the curve's
// structural constraint).
func New(t *tree.Tree, o order.Order, c sfc.Curve) *Placement {
	if len(o.Rank) != t.N() {
		panic("layout: order size does not match tree")
	}
	side := c.Side(t.N())
	p := &Placement{
		Tree:  t,
		Order: o,
		Curve: c,
		Side:  side,
		x:     make([]int32, t.N()),
		y:     make([]int32, t.N()),
	}
	for v := 0; v < t.N(); v++ {
		x, y := c.XY(o.Rank[v], side)
		p.x[v], p.y[v] = int32(x), int32(y)
	}
	return p
}

// LightFirst is a convenience constructor: light-first order on the given
// curve — the paper's layout.
func LightFirst(t *tree.Tree, c sfc.Curve) *Placement {
	return New(t, order.LightFirst(t), c)
}

// FromRanks builds a placement from explicit per-vertex curve ranks on a
// side×side grid. Unlike New, the ranks need not be the contiguous image
// of an order — a dynamic layout's spread-out, parked positions are the
// intended input — so the grid side is given by the caller and every
// rank must be a distinct slot inside it.
func FromRanks(t *tree.Tree, name string, ranks []int, c sfc.Curve, side int) (*Placement, error) {
	if len(ranks) != t.N() {
		return nil, fmt.Errorf("layout: %d ranks for %d vertices", len(ranks), t.N())
	}
	slots := side * side
	p := &Placement{
		Tree:  t,
		Order: order.Order{Name: name, Rank: append([]int(nil), ranks...)},
		Curve: c,
		Side:  side,
		x:     make([]int32, t.N()),
		y:     make([]int32, t.N()),
	}
	seen := make([]bool, slots)
	for v, r := range ranks {
		if r < 0 || r >= slots {
			return nil, fmt.Errorf("layout: vertex %d at rank %d outside the %d×%d grid", v, r, side, side)
		}
		if seen[r] {
			return nil, fmt.Errorf("layout: two vertices at rank %d", r)
		}
		seen[r] = true
		x, y := c.XY(r, side)
		p.x[v], p.y[v] = int32(x), int32(y)
	}
	return p, nil
}

// Pos returns the grid coordinates of vertex v.
func (p *Placement) Pos(v int) (x, y int) {
	return int(p.x[v]), int(p.y[v])
}

// Dist returns the Manhattan distance between the processors holding
// vertices u and v — the energy of one message between them.
func (p *Placement) Dist(u, v int) int {
	return sfc.Manhattan(int(p.x[u]), int(p.y[u]), int(p.x[v]), int(p.y[v]))
}

// RankDist returns the Manhattan distance between the processors at curve
// positions i and j (not necessarily occupied by vertices).
func (p *Placement) RankDist(i, j int) int {
	return sfc.Dist(p.Curve, i, j, p.Side)
}

// KernelCost summarizes the energy of a messaging kernel on a placement.
type KernelCost struct {
	// Messages is the number of point-to-point messages sent.
	Messages int
	// Energy is the total Manhattan distance over all messages.
	Energy int64
	// MaxDist is the largest single-message distance.
	MaxDist int
	// PerMessage is Energy / Messages (0 when no messages).
	PerMessage float64
	// PerVertex is Energy / n — the normalized quantity Theorem 1 bounds
	// by a constant for light-first layouts.
	PerVertex float64
}

func (k *KernelCost) finish(n int) {
	if k.Messages > 0 {
		k.PerMessage = float64(k.Energy) / float64(k.Messages)
	}
	if n > 0 {
		k.PerVertex = float64(k.Energy) / float64(n)
	}
}

// ParentChildEnergy measures the paper's local messaging kernel: every
// vertex sends one message to each of its children. By symmetry of the
// Manhattan distance this also equals the child-to-parent kernel
// (Theorem 1's remark).
func ParentChildEnergy(p *Placement) KernelCost {
	var k KernelCost
	t := p.Tree
	for v := 0; v < t.N(); v++ {
		for _, c := range t.Children(v) {
			d := p.Dist(v, c)
			k.Messages++
			k.Energy += int64(d)
			if d > k.MaxDist {
				k.MaxDist = d
			}
		}
	}
	k.finish(t.N())
	return k
}

// TheoremOneBound returns the explicit energy bound proven in Theorem 1
// for a tree of n vertices with maximum degree ∆ on a curve with
// distance-bound constant c: ∆·8c·n. Measured kernels on light-first
// placements must stay below it.
func TheoremOneBound(n, maxDegree int, c float64) float64 {
	return float64(maxDegree) * 8 * c * float64(n)
}

// ZDiagnostics decomposes the parent→child kernel energy on a Z-order
// placement following Lemma 3: each message from curve position i to
// position i+j costs at most Eb(i,j) + Ed(i,j), where Eb is the energy the
// message would cost on an aligned curve (at most 8·√j by Lemma 4) and Ed
// is the contribution of the longest crossed diagonal. We report the
// measured split: Base sums min(dist, ⌈8√j⌉) and Diagonal sums the excess
// dist - 8√j where positive. Lemma 7 asserts Diagonal ∈ O(n).
type ZDiagnostics struct {
	Base     int64 // energy within the aligned-curve bound
	Diagonal int64 // excess energy attributed to Z diagonals
	// CrossingEdges counts edges whose distance exceeded the aligned
	// bound, i.e. edges that crossed a dominating diagonal.
	CrossingEdges int
}

// MeasureZDiagnostics computes the Lemma 3 split for a placement (any
// curve; meaningful for Z-order).
func MeasureZDiagnostics(p *Placement) ZDiagnostics {
	var z ZDiagnostics
	t := p.Tree
	for v := 0; v < t.N(); v++ {
		for _, c := range t.Children(v) {
			d := int64(p.Dist(v, c))
			j := p.Order.Rank[c] - p.Order.Rank[v]
			if j < 0 {
				j = -j
			}
			bound := int64(math.Ceil(8 * math.Sqrt(float64(j))))
			if d > bound {
				z.Base += bound
				z.Diagonal += d - bound
				z.CrossingEdges++
			} else {
				z.Base += d
			}
		}
	}
	return z
}

// DistanceHistogram returns counts of parent-child message distances in
// power-of-two buckets: bucket k counts edges with distance in
// [2^k, 2^{k+1}).
func DistanceHistogram(p *Placement) []int {
	var hist []int
	t := p.Tree
	for v := 0; v < t.N(); v++ {
		for _, c := range t.Children(v) {
			d := p.Dist(v, c)
			k := 0
			for 1<<(k+1) <= d {
				k++
			}
			for len(hist) <= k {
				hist = append(hist, 0)
			}
			hist[k]++
		}
	}
	return hist
}

// Report bundles the standard quality metrics of a placement for the
// experiment tables.
type Report struct {
	Curve     string
	Order     string
	N         int
	Side      int
	MaxDegree int
	Kernel    KernelCost
	// Bound is the Theorem 1 bound ∆·8c·n using the curve's measured
	// distance-bound constant (3 for Hilbert-class curves); 0 when the
	// curve is not distance-bound.
	Bound float64
}

// Alphas records the literature distance-bound constants α per curve
// (Section III-B). Curves absent from the map are not distance-bound.
var Alphas = map[string]float64{
	"hilbert": 3,
	"moore":   3,
	"peano":   math.Sqrt(10 + 2.0/3.0),
}

// Measure builds the standard report for a placement.
func Measure(p *Placement) Report {
	rep := Report{
		Curve:     p.Curve.Name(),
		Order:     p.Order.Name,
		N:         p.Tree.N(),
		Side:      p.Side,
		MaxDegree: p.Tree.MaxDegree(),
		Kernel:    ParentChildEnergy(p),
	}
	if alpha, ok := Alphas[rep.Curve]; ok {
		rep.Bound = TheoremOneBound(rep.N, rep.MaxDegree, alpha)
	}
	return rep
}
