package layout

import (
	"math"
	"testing"

	"spatialtree/internal/order"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

func TestPlacementGeometry(t *testing.T) {
	tr := tree.Path(16)
	p := LightFirst(tr, sfc.Hilbert{})
	if p.Side != 4 {
		t.Fatalf("side = %d, want 4", p.Side)
	}
	// A path in light-first order on the Hilbert curve walks the curve:
	// every parent-child distance is exactly 1.
	k := ParentChildEnergy(p)
	if k.Messages != 15 || k.Energy != 15 || k.MaxDist != 1 {
		t.Fatalf("path kernel = %+v", k)
	}
	if k.PerMessage != 1 || k.PerVertex != 15.0/16 {
		t.Fatalf("path kernel normalization = %+v", k)
	}
}

func TestDistSymmetry(t *testing.T) {
	r := rng.New(1)
	tr := tree.RandomAttachment(100, r)
	p := LightFirst(tr, sfc.Hilbert{})
	for trial := 0; trial < 200; trial++ {
		u, v := r.Intn(tr.N()), r.Intn(tr.N())
		if p.Dist(u, v) != p.Dist(v, u) {
			t.Fatalf("asymmetric distance between %d and %d", u, v)
		}
	}
	if p.Dist(5, 5) != 0 {
		t.Fatal("self-distance nonzero")
	}
}

func TestTheorem1EnergyBound(t *testing.T) {
	// Light-first layouts on distance-bound curves must respect the
	// explicit Theorem 1 bound ∆·8c·n, for several tree families and
	// curves.
	r := rng.New(2)
	trees := []*tree.Tree{
		tree.Path(300),
		tree.PerfectBinary(9),
		tree.Caterpillar(400),
		tree.RandomBoundedDegree(500, 2, r),
		tree.RandomBoundedDegree(500, 3, r),
		tree.Comb(20, 10),
	}
	curves := []sfc.Curve{sfc.Hilbert{}, sfc.Moore{}, sfc.Peano{}}
	for _, tr := range trees {
		for _, c := range curves {
			p := LightFirst(tr, c)
			rep := Measure(p)
			if rep.Bound <= 0 {
				t.Fatalf("%s: missing Theorem 1 bound", c.Name())
			}
			if float64(rep.Kernel.Energy) > rep.Bound {
				t.Errorf("%s n=%d ∆=%d: kernel energy %d exceeds Theorem 1 bound %.0f",
					c.Name(), tr.N(), rep.MaxDegree, rep.Kernel.Energy, rep.Bound)
			}
		}
	}
}

func TestLightFirstConstantPerVertex(t *testing.T) {
	// The per-vertex energy of light-first layouts must not grow with n
	// (Theorem 1): compare two sizes a factor 16 apart.
	r := rng.New(3)
	small := LightFirst(tree.RandomBoundedDegree(1<<10, 2, r), sfc.Hilbert{})
	large := LightFirst(tree.RandomBoundedDegree(1<<14, 2, r), sfc.Hilbert{})
	ks, kl := ParentChildEnergy(small), ParentChildEnergy(large)
	if kl.PerVertex > ks.PerVertex*2 {
		t.Errorf("per-vertex energy grew: %.3f (n=2^10) -> %.3f (n=2^14)",
			ks.PerVertex, kl.PerVertex)
	}
}

func TestBFSOnPerfectBinaryIsBad(t *testing.T) {
	// Section III: a perfect binary tree in BFS layout has Ω(√n) average
	// neighbor distance. Verify the average exceeds side/8 and that
	// light-first beats it by a wide margin.
	tr := tree.PerfectBinary(12) // n = 4095
	bfs := New(tr, order.BFS(tr), sfc.Hilbert{})
	lf := LightFirst(tr, sfc.Hilbert{})
	kb, kl := ParentChildEnergy(bfs), ParentChildEnergy(lf)
	if kb.PerMessage < float64(bfs.Side)/8 {
		t.Errorf("BFS per-message distance %.2f not Ω(side=%d)", kb.PerMessage, bfs.Side)
	}
	if kb.Energy < 4*kl.Energy {
		t.Errorf("BFS energy %d not clearly worse than light-first %d", kb.Energy, kl.Energy)
	}
}

func TestDFSOnCaterpillarIsBad(t *testing.T) {
	// Section III: DFS order on a caterpillar (spine-child-first) has
	// poor locality; light-first fixes it. The caterpillar generator
	// numbers spine before leaves, so plain DFS visits the heavy spine
	// child first.
	tr := tree.Caterpillar(1 << 12)
	dfs := New(tr, order.DFS(tr), sfc.Hilbert{})
	lf := LightFirst(tr, sfc.Hilbert{})
	kd, kl := ParentChildEnergy(dfs), ParentChildEnergy(lf)
	if kd.Energy < 4*kl.Energy {
		t.Errorf("DFS caterpillar energy %d not clearly worse than light-first %d",
			kd.Energy, kl.Energy)
	}
}

func TestZOrderLightFirstEnergyBound(t *testing.T) {
	// Theorem 2: Z-light-first is energy-bound. Check per-vertex energy
	// is flat across sizes and the diagonal excess is O(n) (Lemma 7).
	r := rng.New(4)
	var prevPerVertex float64
	for _, bits := range []int{10, 12, 14} {
		tr := tree.RandomBoundedDegree(1<<bits, 2, r)
		p := LightFirst(tr, sfc.ZOrder{})
		k := ParentChildEnergy(p)
		z := MeasureZDiagnostics(p)
		if z.Base+z.Diagonal != k.Energy {
			t.Fatalf("diagnostics split %d+%d != energy %d", z.Base, z.Diagonal, k.Energy)
		}
		if perV := float64(z.Diagonal) / float64(tr.N()); perV > 8 {
			t.Errorf("n=2^%d: diagonal energy per vertex %.2f too large", bits, perV)
		}
		if prevPerVertex > 0 && k.PerVertex > prevPerVertex*2 {
			t.Errorf("n=2^%d: Z per-vertex energy grew from %.2f to %.2f",
				bits, prevPerVertex, k.PerVertex)
		}
		prevPerVertex = k.PerVertex
	}
}

func TestScatterIsExpensive(t *testing.T) {
	// Scatter placement models PRAM-style lack of locality: per-message
	// energy should be Θ(side).
	tr := tree.RandomBoundedDegree(1<<12, 2, rng.New(5))
	p := LightFirst(tr, sfc.Scatter{})
	k := ParentChildEnergy(p)
	if k.PerMessage < float64(p.Side)/4 {
		t.Errorf("scatter per-message %.2f, expected Θ(side=%d)", k.PerMessage, p.Side)
	}
	lf := LightFirst(tr, sfc.Hilbert{})
	if ParentChildEnergy(lf).Energy*4 > k.Energy {
		t.Error("scatter not clearly worse than Hilbert light-first")
	}
}

func TestDistanceHistogram(t *testing.T) {
	tr := tree.Path(64)
	p := LightFirst(tr, sfc.Hilbert{})
	hist := DistanceHistogram(p)
	// All 63 edges have distance exactly 1 -> bucket 0.
	if len(hist) != 1 || hist[0] != 63 {
		t.Fatalf("hist = %v, want [63]", hist)
	}
	total := 0
	tr2 := tree.PerfectBinary(8)
	p2 := New(tr2, order.BFS(tr2), sfc.Hilbert{})
	for _, c := range DistanceHistogram(p2) {
		total += c
	}
	if total != tr2.N()-1 {
		t.Fatalf("histogram counts %d edges, want %d", total, tr2.N()-1)
	}
}

func TestTheoremOneBoundFormula(t *testing.T) {
	if got := TheoremOneBound(100, 3, 3); got != 3*8*3*100 {
		t.Fatalf("TheoremOneBound = %v", got)
	}
}

func TestMeasureReportFields(t *testing.T) {
	tr := tree.PerfectBinary(6)
	rep := Measure(LightFirst(tr, sfc.Peano{}))
	if rep.Curve != "peano" || rep.Order != "light-first" || rep.N != 63 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Bound == 0 {
		t.Fatal("peano should carry a Theorem 1 bound")
	}
	repZ := Measure(LightFirst(tr, sfc.ZOrder{}))
	if repZ.Bound != 0 {
		t.Fatal("zorder must not claim a distance-bound constant")
	}
	if math.IsNaN(rep.Kernel.PerMessage) {
		t.Fatal("NaN in report")
	}
}

func TestNewPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on order/tree size mismatch")
		}
	}()
	tr := tree.Path(4)
	o := order.Order{Name: "bad", Rank: []int{0, 1, 2}}
	New(tr, o, sfc.Hilbert{})
}

func TestRankDist(t *testing.T) {
	tr := tree.Path(16)
	p := LightFirst(tr, sfc.Hilbert{})
	if p.RankDist(0, 1) != 1 {
		t.Fatal("adjacent curve ranks should be neighbors on Hilbert")
	}
	if p.RankDist(3, 3) != 0 {
		t.Fatal("self rank distance nonzero")
	}
}

// TestKernelCostSingleVertex pins the divide-by-zero edges of the
// kernel measurement: a one-vertex tree has no messages, so every
// normalized field must be 0 (not NaN or Inf).
func TestKernelCostSingleVertex(t *testing.T) {
	p := LightFirst(tree.MustFromParents([]int{-1}), sfc.Hilbert{})
	k := ParentChildEnergy(p)
	if k.Messages != 0 || k.Energy != 0 || k.MaxDist != 0 {
		t.Fatalf("single-vertex kernel = %+v, want zeros", k)
	}
	if k.PerMessage != 0 || k.PerVertex != 0 {
		t.Fatalf("single-vertex normalization = %+v, want zeros (no NaN)", k)
	}
	if math.IsNaN(k.PerMessage) || math.IsNaN(k.PerVertex) {
		t.Fatal("NaN leaked from zero-message kernel")
	}
}

func TestFromRanks(t *testing.T) {
	tr := tree.Path(4)
	// Sparse, non-contiguous ranks on an 4×4 grid.
	p, err := FromRanks(tr, "sparse", []int{0, 2, 4, 6}, sfc.Hilbert{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Side != 4 || p.Order.Name != "sparse" {
		t.Fatalf("placement = side %d order %q", p.Side, p.Order.Name)
	}
	for v, r := range []int{0, 2, 4, 6} {
		x, y := sfc.Hilbert{}.XY(r, 4)
		if px, py := p.Pos(v); px != x || py != y {
			t.Fatalf("vertex %d at (%d,%d), want (%d,%d)", v, px, py, x, y)
		}
	}
	// The kernel measurement works on sparse placements.
	if k := ParentChildEnergy(p); k.Messages != 3 || k.Energy <= 0 {
		t.Fatalf("sparse kernel = %+v", k)
	}

	for _, tc := range []struct {
		name  string
		ranks []int
		side  int
	}{
		{"wrong length", []int{0, 1}, 4},
		{"negative rank", []int{-1, 1, 2, 3}, 4},
		{"rank beyond grid", []int{0, 1, 2, 16}, 4},
		{"duplicate rank", []int{0, 1, 1, 3}, 4},
	} {
		if _, err := FromRanks(tr, "bad", tc.ranks, sfc.Hilbert{}, tc.side); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
