package tree

// Euler tours (Section IV of the paper). The spatial layout-construction
// pipeline computes subtree sizes and light-first ranks from an Euler tour
// obtained by list ranking; this file provides the sequential reference
// used as a test oracle and by the host-side layout builder.

// EulerTour returns the Euler tour of t as a vertex-visit sequence of
// length 2n-1: the tour starts at the root, and every time it traverses an
// edge (down to a child or back up to the parent) it records the vertex it
// arrives at. Children are visited in the order given by childOf, which
// defaults to CSR order when nil.
func (t *Tree) EulerTour(childOf func(v int) []int) []int {
	if t.N() == 0 {
		return nil
	}
	if childOf == nil {
		childOf = t.Children
	}
	tour := make([]int, 0, 2*t.N()-1)
	// Iterative DFS tracking the next-child index per vertex on the stack.
	type frame struct {
		v    int
		next int
	}
	stack := []frame{{t.root, 0}}
	tour = append(tour, t.root)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ch := childOf(f.v)
		if f.next < len(ch) {
			c := ch[f.next]
			f.next++
			stack = append(stack, frame{c, 0})
			tour = append(tour, c)
			continue
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			tour = append(tour, stack[len(stack)-1].v)
		}
	}
	return tour
}

// FirstLast returns, for each vertex, the index of its first and last
// occurrence in a vertex-visit Euler tour.
func FirstLast(tour []int, n int) (first, last []int) {
	first = make([]int, n)
	last = make([]int, n)
	for v := range first {
		first[v] = -1
	}
	for i, v := range tour {
		if first[v] == -1 {
			first[v] = i
		}
		last[v] = i
	}
	return first, last
}

// SubtreeSizesFromTour recovers s(v) from an Euler tour, mirroring step 1b
// of the paper's layout construction: between the first and last
// occurrence of v the tour spends 2·(s(v)-1) steps inside v's subtree, so
// s(v) = (last-first)/2 + 1.
func SubtreeSizesFromTour(tour []int, n int) []int {
	first, last := FirstLast(tour, n)
	size := make([]int, n)
	for v := 0; v < n; v++ {
		size[v] = (last[v]-first[v])/2 + 1
	}
	return size
}
