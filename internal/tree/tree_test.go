package tree

import (
	"testing"
	"testing/quick"

	"spatialtree/internal/rng"
)

func TestFromParentsValid(t *testing.T) {
	tr, err := FromParents([]int{-1, 0, 0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 6 || tr.Root() != 0 {
		t.Fatalf("n=%d root=%d", tr.N(), tr.Root())
	}
	if got := tr.Children(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("children(0) = %v", got)
	}
	if got := tr.Children(1); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("children(1) = %v", got)
	}
	if tr.NumChildren(5) != 0 || !tr.IsLeaf(5) {
		t.Fatal("vertex 5 should be a leaf")
	}
	if tr.Parent(3) != 1 || tr.Parent(0) != -1 {
		t.Fatal("parent accessor broken")
	}
}

func TestFromParentsErrors(t *testing.T) {
	cases := [][]int{
		{0},           // self-loop root candidate
		{-1, -1},      // two roots
		{1, 0},        // cycle, no root
		{-1, 5},       // out of range
		{-1, 0, 3, 2}, // 2<->3 cycle unreachable... parent[2]=3, parent[3]=2
		{-1, 1},       // self parent at 1
	}
	for _, parent := range cases {
		if _, err := FromParents(parent); err == nil {
			t.Errorf("FromParents(%v): expected error", parent)
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tr, err := FromParents(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 0 || tr.Root() != -1 {
		t.Fatal("empty tree malformed")
	}
	if got := tr.PreOrder(); got != nil {
		t.Fatalf("PreOrder of empty = %v", got)
	}
}

func TestSingleVertex(t *testing.T) {
	tr := MustFromParents([]int{-1})
	if tr.Height() != 0 || tr.MaxDegree() != 0 || !tr.IsLeaf(0) {
		t.Fatal("single vertex stats wrong")
	}
	if got := tr.SubtreeSizes(); got[0] != 1 {
		t.Fatalf("size = %v", got)
	}
	if tour := tr.EulerTour(nil); len(tour) != 1 || tour[0] != 0 {
		t.Fatalf("tour = %v", tour)
	}
}

func TestDegreeCountsParentEdge(t *testing.T) {
	tr := Star(5)
	if tr.Degree(0) != 4 {
		t.Errorf("root degree = %d, want 4", tr.Degree(0))
	}
	if tr.Degree(1) != 1 {
		t.Errorf("leaf degree = %d, want 1", tr.Degree(1))
	}
	if tr.MaxDegree() != 4 {
		t.Errorf("max degree = %d, want 4", tr.MaxDegree())
	}
	p := Path(5)
	if p.Degree(2) != 2 {
		t.Errorf("inner path degree = %d, want 2", p.Degree(2))
	}
}

func TestSubtreeSizesKnown(t *testing.T) {
	tr := MustFromParents([]int{-1, 0, 0, 1, 1, 2})
	want := []int{6, 3, 2, 1, 1, 1}
	got := tr.SubtreeSizes()
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("size[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestOrdersArePermutations(t *testing.T) {
	r := rng.New(1)
	trees := []*Tree{
		Path(17), Star(9), PerfectBinary(5), Caterpillar(12),
		RandomAttachment(50, r), PreferentialAttachment(40, r),
		RandomBoundedDegree(30, 2, r), Comb(5, 3),
	}
	for _, tr := range trees {
		for name, order := range map[string][]int{
			"pre":  tr.PreOrder(),
			"post": tr.PostOrder(),
			"bfs":  tr.BFSOrder(),
		} {
			if len(order) != tr.N() {
				t.Fatalf("%s order has length %d, want %d", name, len(order), tr.N())
			}
			seen := make([]bool, tr.N())
			for _, v := range order {
				if v < 0 || v >= tr.N() || seen[v] {
					t.Fatalf("%s order invalid at %d", name, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestPreOrderParentBeforeChild(t *testing.T) {
	r := rng.New(2)
	tr := RandomAttachment(200, r)
	pos := make([]int, tr.N())
	for i, v := range tr.PreOrder() {
		pos[v] = i
	}
	for v := 0; v < tr.N(); v++ {
		if p := tr.Parent(v); p != -1 && pos[p] >= pos[v] {
			t.Fatalf("pre-order: parent %d not before child %d", p, v)
		}
	}
}

func TestPostOrderChildBeforeParent(t *testing.T) {
	r := rng.New(3)
	tr := PreferentialAttachment(200, r)
	pos := make([]int, tr.N())
	for i, v := range tr.PostOrder() {
		pos[v] = i
	}
	for v := 0; v < tr.N(); v++ {
		if p := tr.Parent(v); p != -1 && pos[p] <= pos[v] {
			t.Fatalf("post-order: parent %d not after child %d", p, v)
		}
	}
}

func TestBFSOrderLevelMonotone(t *testing.T) {
	tr := PerfectBinary(6)
	depth := tr.Depths()
	prev := -1
	for _, v := range tr.BFSOrder() {
		if depth[v] < prev {
			t.Fatalf("BFS order visits depth %d after depth %d", depth[v], prev)
		}
		prev = depth[v]
	}
}

func TestHeightAndDepths(t *testing.T) {
	if h := Path(10).Height(); h != 9 {
		t.Errorf("path height = %d, want 9", h)
	}
	if h := Star(10).Height(); h != 1 {
		t.Errorf("star height = %d, want 1", h)
	}
	if h := PerfectBinary(4).Height(); h != 3 {
		t.Errorf("perfect binary height = %d, want 3", h)
	}
	if h := Caterpillar(10).Height(); h != 5 {
		t.Errorf("caterpillar height = %d, want 5", h)
	}
}

func TestIsAncestor(t *testing.T) {
	tr := MustFromParents([]int{-1, 0, 0, 1, 1, 2})
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 5, true}, {1, 3, true}, {1, 5, false}, {3, 3, true},
		{3, 1, false}, {2, 5, true}, {5, 2, false},
	}
	for _, tc := range cases {
		if got := tr.IsAncestor(tc.u, tc.v); got != tc.want {
			t.Errorf("IsAncestor(%d,%d) = %v, want %v", tc.u, tc.v, got, tc.want)
		}
	}
}

func TestGeneratorShapes(t *testing.T) {
	r := rng.New(4)
	if n := PerfectKAry(3, 3).N(); n != 13 {
		t.Errorf("perfect 3-ary 3 levels: n = %d, want 13", n)
	}
	if d := Star(100).MaxDegree(); d != 99 {
		t.Errorf("star max degree = %d, want 99", d)
	}
	cat := Caterpillar(20)
	if cat.N() != 20 {
		t.Errorf("caterpillar n = %d", cat.N())
	}
	// Every spine vertex except the last has exactly one spine child and
	// one leaf child.
	if got := cat.NumChildren(0); got != 2 {
		t.Errorf("caterpillar spine head has %d children, want 2", got)
	}
	y := Yule(50, r)
	if y.N() != 99 {
		t.Errorf("yule(50): n = %d, want 99", y.N())
	}
	leaves := 0
	for v := 0; v < y.N(); v++ {
		nc := y.NumChildren(v)
		if nc != 0 && nc != 2 {
			t.Fatalf("yule tree not full binary: vertex %d has %d children", v, nc)
		}
		if nc == 0 {
			leaves++
		}
	}
	if leaves != 50 {
		t.Errorf("yule(50): %d leaves", leaves)
	}
	bd := RandomBoundedDegree(500, 3, r)
	for v := 0; v < bd.N(); v++ {
		if bd.NumChildren(v) > 3 {
			t.Fatalf("bounded-degree tree exceeded limit at %d", v)
		}
	}
	dt := DecisionTree(1000, 10, r)
	for v := 0; v < dt.N(); v++ {
		if nc := dt.NumChildren(v); nc != 0 && nc != 2 {
			t.Fatalf("decision tree vertex %d has %d children", v, nc)
		}
	}
	cb := Comb(7, 4)
	if cb.N() != 7*5 {
		t.Errorf("comb n = %d, want 35", cb.N())
	}
	if cb.Height() != 6+4 {
		t.Errorf("comb height = %d, want 10", cb.Height())
	}
}

func TestPreferentialAttachmentHasHubs(t *testing.T) {
	r := rng.New(5)
	tr := PreferentialAttachment(5000, r)
	if d := tr.MaxDegree(); d < 20 {
		t.Errorf("preferential attachment max degree = %d, expected a hub", d)
	}
	ra := RandomAttachment(5000, r)
	if tr.MaxDegree() <= ra.MaxDegree() {
		t.Errorf("preferential (%d) should out-hub uniform attachment (%d)",
			tr.MaxDegree(), ra.MaxDegree())
	}
}

func TestRelabelPreservesShape(t *testing.T) {
	r := rng.New(6)
	orig := RandomAttachment(300, r)
	rel := RelabelRandom(orig, r)
	if rel.N() != orig.N() {
		t.Fatal("relabel changed size")
	}
	ss, sr := orig.SubtreeSizes(), rel.SubtreeSizes()
	// Multisets of subtree sizes must match.
	count := map[int]int{}
	for _, s := range ss {
		count[s]++
	}
	for _, s := range sr {
		count[s]--
	}
	for s, c := range count {
		if c != 0 {
			t.Fatalf("subtree size %d multiplicity differs by %d", s, c)
		}
	}
	if orig.Height() != rel.Height() {
		t.Fatal("relabel changed height")
	}
}

func TestEulerTourProperties(t *testing.T) {
	r := rng.New(7)
	trees := []*Tree{Path(9), Star(9), PerfectBinary(4), RandomAttachment(100, r), Caterpillar(15)}
	for _, tr := range trees {
		tour := tr.EulerTour(nil)
		if len(tour) != 2*tr.N()-1 {
			t.Fatalf("tour length %d, want %d", len(tour), 2*tr.N()-1)
		}
		if tour[0] != tr.Root() || tour[len(tour)-1] != tr.Root() {
			t.Fatal("tour must start and end at the root")
		}
		// Consecutive tour vertices are tree neighbors.
		for i := 1; i < len(tour); i++ {
			u, v := tour[i-1], tour[i]
			if tr.Parent(u) != v && tr.Parent(v) != u {
				t.Fatalf("tour step %d: %d and %d not adjacent", i, u, v)
			}
		}
		// Each vertex appears deg-many times (children count + 1).
		occ := make([]int, tr.N())
		for _, v := range tour {
			occ[v]++
		}
		for v := 0; v < tr.N(); v++ {
			want := tr.NumChildren(v) + 1
			if occ[v] != want {
				t.Fatalf("vertex %d occurs %d times, want %d", v, occ[v], want)
			}
		}
	}
}

func TestSubtreeSizesFromTourMatchesDirect(t *testing.T) {
	r := rng.New(8)
	for trial := 0; trial < 20; trial++ {
		tr := RandomAttachment(2+r.Intn(200), r)
		tour := tr.EulerTour(nil)
		fromTour := SubtreeSizesFromTour(tour, tr.N())
		direct := tr.SubtreeSizes()
		for v := range direct {
			if fromTour[v] != direct[v] {
				t.Fatalf("trial %d vertex %d: tour says %d, direct says %d",
					trial, v, fromTour[v], direct[v])
			}
		}
	}
}

func TestChildrenBySize(t *testing.T) {
	// Root with three children of sizes 3, 1, 2 (vertex ids 1, 2, 3).
	tr := MustFromParents([]int{-1, 0, 0, 0, 1, 1, 3})
	size := tr.SubtreeSizes()
	got := tr.ChildrenBySize(0, size)
	want := []int{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ChildrenBySize = %v, want %v", got, want)
		}
	}
	// Original CSR order must be untouched.
	if c := tr.Children(0); c[0] != 1 {
		t.Fatal("ChildrenBySize mutated the CSR adjacency")
	}
}

func TestSubtreeSizesQuick(t *testing.T) {
	// Property: sum of root's children's sizes + 1 == n, and every leaf
	// has size 1.
	f := func(seed uint64, rawN uint16) bool {
		n := 2 + int(rawN)%500
		tr := RandomAttachment(n, rng.New(seed))
		size := tr.SubtreeSizes()
		if size[tr.Root()] != n {
			return false
		}
		sum := 1
		for _, c := range tr.Children(tr.Root()) {
			sum += size[c]
		}
		if sum != n {
			return false
		}
		for v := 0; v < n; v++ {
			if tr.IsLeaf(v) && size[v] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := PerfectBinary(4).Summarize()
	if s.N != 15 || s.Height != 3 || s.MaxDegree != 3 || s.Leaves != 8 {
		t.Errorf("perfect binary summary = %+v", s)
	}
}
