// Package tree provides the rooted-tree representation shared by every
// algorithm in this repository, together with the workload generators used
// in the experiments and sequential reference implementations of the tree
// primitives (subtree sizes, Euler tours, treefix sums) that serve as test
// oracles for the spatial algorithms.
//
// Vertices are integers 0..n-1. The representation is a parent array plus
// a CSR (compressed sparse row) child adjacency, so Children(v) is an
// allocation-free slice view and the whole structure is two flat arrays —
// the same "one vertex per processor, O(1) words each" discipline the
// spatial computer model imposes (Section II-A of the paper).
package tree

import (
	"fmt"
	"sort"
)

// Tree is a rooted tree over vertices 0..N()-1. Construct one with
// FromParents or a generator; the zero value is an empty tree.
type Tree struct {
	root       int
	parent     []int // parent[root] == -1
	childStart []int // CSR offsets, len n+1
	childList  []int // CSR child ids, len n-1 (for n > 0)
}

// FromParents builds a tree from a parent array. parent[v] must be the
// parent vertex of v, and exactly one vertex (the root) must have parent
// -1. The function validates that the structure is a single connected
// acyclic tree and returns an error otherwise.
func FromParents(parent []int) (*Tree, error) {
	n := len(parent)
	if n == 0 {
		return &Tree{root: -1}, nil
	}
	root := -1
	for v, p := range parent {
		switch {
		case p == -1:
			if root != -1 {
				return nil, fmt.Errorf("tree: two roots (%d and %d)", root, v)
			}
			root = v
		case p < 0 || p >= n:
			return nil, fmt.Errorf("tree: vertex %d has out-of-range parent %d", v, p)
		case p == v:
			return nil, fmt.Errorf("tree: vertex %d is its own parent", v)
		}
	}
	if root == -1 {
		return nil, fmt.Errorf("tree: no root (no vertex with parent -1)")
	}

	t := &Tree{root: root, parent: append([]int(nil), parent...)}
	t.buildCSR()

	// Reachability check: BFS from the root must visit all n vertices.
	// (This also rules out cycles among non-root vertices.)
	seen := make([]bool, n)
	seen[root] = true
	queue := []int{root}
	visited := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range t.Children(v) {
			if seen[c] {
				return nil, fmt.Errorf("tree: vertex %d reached twice", c)
			}
			seen[c] = true
			visited++
			queue = append(queue, c)
		}
	}
	if visited != n {
		return nil, fmt.Errorf("tree: only %d of %d vertices reachable from root", visited, n)
	}
	return t, nil
}

// MustFromParents is FromParents but panics on invalid input; for use in
// tests and generators whose output is valid by construction.
func MustFromParents(parent []int) *Tree {
	t, err := FromParents(parent)
	if err != nil {
		panic(err)
	}
	return t
}

// buildCSR fills the CSR child adjacency from the parent array. Children
// of each vertex appear in increasing vertex order.
func (t *Tree) buildCSR() {
	n := len(t.parent)
	t.childStart = make([]int, n+1)
	for v, p := range t.parent {
		if v != t.root {
			t.childStart[p+1]++
		}
	}
	for v := 0; v < n; v++ {
		t.childStart[v+1] += t.childStart[v]
	}
	t.childList = make([]int, n-1)
	fill := make([]int, n)
	copy(fill, t.childStart[:n])
	for v, p := range t.parent {
		if v != t.root {
			t.childList[fill[p]] = v
			fill[p]++
		}
	}
}

// N returns the number of vertices.
func (t *Tree) N() int { return len(t.parent) }

// Root returns the root vertex, or -1 for an empty tree.
func (t *Tree) Root() int { return t.root }

// Parent returns the parent of v, or -1 for the root.
func (t *Tree) Parent(v int) int { return t.parent[v] }

// Parents returns the underlying parent array (not a copy; callers must
// not modify it).
func (t *Tree) Parents() []int { return t.parent }

// Children returns the children of v as a shared slice view; callers must
// not modify it.
func (t *Tree) Children(v int) []int {
	return t.childList[t.childStart[v]:t.childStart[v+1]]
}

// NumChildren returns the number of children of v.
func (t *Tree) NumChildren(v int) int {
	return t.childStart[v+1] - t.childStart[v]
}

// Degree returns deg(v): the number of children plus one for the parent
// edge (the root has no parent edge), as in Table I of the paper.
func (t *Tree) Degree(v int) int {
	d := t.NumChildren(v)
	if v != t.root {
		d++
	}
	return d
}

// MaxDegree returns ∆, the maximum Degree over all vertices.
func (t *Tree) MaxDegree() int {
	max := 0
	for v := 0; v < t.N(); v++ {
		if d := t.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// IsLeaf reports whether v has no children.
func (t *Tree) IsLeaf(v int) bool { return t.NumChildren(v) == 0 }

// SubtreeSizes returns s(v) for every vertex: the number of descendants
// of v including v itself (Table I). Sequential reference implementation
// (iterative post-order; no recursion so million-vertex trees are fine).
func (t *Tree) SubtreeSizes() []int {
	n := t.N()
	size := make([]int, n)
	for _, v := range t.PostOrder() {
		size[v] = 1
		for _, c := range t.Children(v) {
			size[v] += size[c]
		}
	}
	return size
}

// Depths returns the edge-distance of every vertex from the root.
func (t *Tree) Depths() []int {
	n := t.N()
	depth := make([]int, n)
	for _, v := range t.PreOrder() {
		if v != t.root {
			depth[v] = depth[t.parent[v]] + 1
		}
	}
	return depth
}

// Height returns the maximum vertex depth (0 for a single vertex).
func (t *Tree) Height() int {
	h := 0
	for _, d := range t.Depths() {
		if d > h {
			h = d
		}
	}
	return h
}

// PreOrder returns the vertices in DFS pre-order, visiting children in
// their CSR (increasing id) order.
func (t *Tree) PreOrder() []int {
	if t.N() == 0 {
		return nil
	}
	out := make([]int, 0, t.N())
	stack := []int{t.root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		ch := t.Children(v)
		for i := len(ch) - 1; i >= 0; i-- { // reversed so leftmost pops first
			stack = append(stack, ch[i])
		}
	}
	return out
}

// PostOrder returns the vertices in DFS post-order (every vertex after
// all of its descendants). Implemented as the reverse of a pre-order that
// visits children right-to-left.
func (t *Tree) PostOrder() []int {
	if t.N() == 0 {
		return nil
	}
	out := make([]int, 0, t.N())
	stack := []int{t.root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		for _, c := range t.Children(v) { // natural order; reversal flips it
			stack = append(stack, c)
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// BFSOrder returns the vertices in breadth-first order from the root.
func (t *Tree) BFSOrder() []int {
	if t.N() == 0 {
		return nil
	}
	out := make([]int, 0, t.N())
	out = append(out, t.root)
	for head := 0; head < len(out); head++ {
		out = append(out, t.Children(out[head])...)
	}
	return out
}

// IsAncestor reports whether u is an ancestor of v (inclusive: every
// vertex is an ancestor of itself, matching the paper's definition of
// descendants containing v). O(depth) reference implementation.
func (t *Tree) IsAncestor(u, v int) bool {
	for v != -1 {
		if v == u {
			return true
		}
		v = t.parent[v]
	}
	return false
}

// ChildrenBySize returns the children of v sorted by ascending subtree
// size (ties broken by vertex id), the order that defines light-first
// layouts (Section III-A). size must be a SubtreeSizes result.
func (t *Tree) ChildrenBySize(v int, size []int) []int {
	ch := append([]int(nil), t.Children(v)...)
	sort.Slice(ch, func(i, j int) bool {
		if size[ch[i]] != size[ch[j]] {
			return size[ch[i]] < size[ch[j]]
		}
		return ch[i] < ch[j]
	})
	return ch
}

// Stats summarizes a tree for experiment tables.
type Stats struct {
	N         int
	Height    int
	MaxDegree int
	Leaves    int
}

// Summarize computes Stats.
func (t *Tree) Summarize() Stats {
	s := Stats{N: t.N(), Height: t.Height(), MaxDegree: t.MaxDegree()}
	for v := 0; v < t.N(); v++ {
		if t.IsLeaf(v) {
			s.Leaves++
		}
	}
	return s
}
