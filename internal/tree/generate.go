package tree

import (
	"fmt"

	"spatialtree/internal/rng"
)

// This file contains the workload generators used by the experiments.
// Each generator is deterministic given its rng seed and returns a valid
// rooted tree with vertex 0 as the root unless stated otherwise.

// Path returns a path graph rooted at one end: 0 → 1 → … → n-1.
func Path(n int) *Tree {
	parent := make([]int, n)
	for v := range parent {
		parent[v] = v - 1
	}
	return MustFromParents(parent)
}

// Star returns a star: root 0 with n-1 children. The canonical
// unbounded-degree tree (∆ = n-1) exercising Section III-D.
func Star(n int) *Tree {
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = 0
	}
	return MustFromParents(parent)
}

// PerfectKAry returns a perfect k-ary tree with the given number of
// levels (levels >= 1; one level is a single vertex). Vertices are
// numbered in BFS order, so the paper's "breadth-first layout of a
// perfect binary tree" worst case (Section III) is the identity order on
// this tree with k=2.
func PerfectKAry(k, levels int) *Tree {
	if k < 1 || levels < 1 {
		panic(fmt.Sprintf("tree: PerfectKAry(%d, %d) invalid", k, levels))
	}
	n := 1
	width := 1
	for l := 1; l < levels; l++ {
		width *= k
		n += width
	}
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = (v - 1) / k
	}
	return MustFromParents(parent)
}

// PerfectBinary returns a perfect binary tree with the given number of
// levels (n = 2^levels - 1).
func PerfectBinary(levels int) *Tree { return PerfectKAry(2, levels) }

// Caterpillar returns the paper's depth-first worst case (Section III):
// a path of ⌈n/2⌉ spine vertices where every spine vertex additionally
// has one leaf child. n must be >= 1; the result has exactly n vertices.
func Caterpillar(n int) *Tree {
	parent := make([]int, n)
	parent[0] = -1
	spine := (n + 1) / 2
	// Spine vertices occupy ids 0..spine-1; leaf i hangs off spine i.
	for v := 1; v < spine; v++ {
		parent[v] = v - 1
	}
	for v := spine; v < n; v++ {
		parent[v] = v - spine
	}
	return MustFromParents(parent)
}

// Broom returns a path of length n/2 ending in a star with the remaining
// vertices: a tree that is simultaneously deep and high-degree.
func Broom(n int) *Tree {
	parent := make([]int, n)
	parent[0] = -1
	handle := n / 2
	if handle < 1 {
		handle = 1
	}
	for v := 1; v < handle; v++ {
		parent[v] = v - 1
	}
	for v := handle; v < n; v++ {
		parent[v] = handle - 1
	}
	return MustFromParents(parent)
}

// RandomAttachment returns a uniform random recursive tree: vertex v
// (v >= 1) attaches to a parent drawn uniformly from 0..v-1. Expected
// height Θ(log n), expected max degree Θ(log n / log log n) — the
// "generic" tree workload.
func RandomAttachment(n int, r *rng.RNG) *Tree {
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = r.Intn(v)
	}
	return MustFromParents(parent)
}

// RandomBoundedDegree returns a random recursive tree in which no vertex
// exceeds maxChildren children: vertex v attaches to a parent drawn
// uniformly from the vertices that still have a free child slot. With
// maxChildren=2 this yields random binary-ish trees, the bounded-degree
// workload of Theorem 1 and Lemma 11.
func RandomBoundedDegree(n, maxChildren int, r *rng.RNG) *Tree {
	if maxChildren < 1 {
		panic("tree: RandomBoundedDegree needs maxChildren >= 1")
	}
	parent := make([]int, n)
	parent[0] = -1
	open := make([]int, 0, n) // vertices with a free slot
	slots := make([]int, n)
	open = append(open, 0)
	slots[0] = maxChildren
	for v := 1; v < n; v++ {
		i := r.Intn(len(open))
		p := open[i]
		parent[v] = p
		slots[p]--
		if slots[p] == 0 {
			open[i] = open[len(open)-1]
			open = open[:len(open)-1]
		}
		slots[v] = maxChildren
		open = append(open, v)
	}
	return MustFromParents(parent)
}

// PreferentialAttachment returns a tree where vertex v attaches to an
// existing vertex with probability proportional to (children+1). This
// produces power-law degree hubs — the adversarial unbounded-degree
// workload for Section III-D and the rake analysis.
func PreferentialAttachment(n int, r *rng.RNG) *Tree {
	parent := make([]int, n)
	parent[0] = -1
	// Repeated-endpoint trick: maintain a multiset where each vertex
	// appears once per attached edge endpoint plus once for itself.
	bag := make([]int, 0, 2*n)
	bag = append(bag, 0)
	for v := 1; v < n; v++ {
		p := bag[r.Intn(len(bag))]
		parent[v] = p
		bag = append(bag, p, v)
	}
	return MustFromParents(parent)
}

// Yule returns a Yule-process phylogenetic tree with the given number of
// leaves: starting from a root with two leaf children, repeatedly pick a
// uniform random leaf and give it two children, until the tree has
// `leaves` leaves. The result is a full binary tree with 2·leaves - 1
// vertices — the computational-biology workload from the paper's
// introduction.
func Yule(leaves int, r *rng.RNG) *Tree {
	if leaves < 1 {
		panic("tree: Yule needs at least one leaf")
	}
	if leaves == 1 {
		return Path(1)
	}
	n := 2*leaves - 1
	parent := make([]int, n)
	parent[0] = -1
	// leavesList holds current leaf vertex ids.
	leavesList := make([]int, 0, leaves)
	parent[1], parent[2] = 0, 0
	leavesList = append(leavesList, 1, 2)
	next := 3
	for next < n {
		i := r.Intn(len(leavesList))
		leaf := leavesList[i]
		parent[next] = leaf
		parent[next+1] = leaf
		// leaf stops being a leaf; its two children join the list.
		leavesList[i] = next
		leavesList = append(leavesList, next+1)
		next += 2
	}
	return MustFromParents(parent)
}

// DecisionTree returns a binary tree grown by recursively splitting a
// synthetic dataset of `samples` items: a node holding m items splits
// into children holding f·m and (1-f)·m items (f drawn uniformly from
// [0.1, 0.9]) until nodes hold at most leafSize items. This mimics the
// shape of CART-style decision trees (machine-learning workload from the
// paper's introduction): unbalanced but with geometrically decreasing
// subtree sizes.
func DecisionTree(samples, leafSize int, r *rng.RNG) *Tree {
	if leafSize < 1 {
		panic("tree: DecisionTree needs leafSize >= 1")
	}
	parent := []int{-1}
	weights := []int{samples}
	for v := 0; v < len(parent); v++ {
		m := weights[v]
		if m <= leafSize {
			continue
		}
		f := 0.1 + 0.8*r.Float64()
		left := int(f * float64(m))
		if left < 1 {
			left = 1
		}
		if left >= m {
			left = m - 1
		}
		parent = append(parent, v, v)
		weights = append(weights, left, m-left)
	}
	return MustFromParents(parent)
}

// Comb returns a "comb": a spine path in which every spine vertex has a
// pendant path of the given tooth length. Generalizes Caterpillar
// (toothLen = 1); useful for stressing compress-heavy contraction.
func Comb(spine, toothLen int) *Tree {
	n := spine * (1 + toothLen)
	parent := make([]int, n)
	parent[0] = -1
	for s := 1; s < spine; s++ {
		parent[s] = s - 1
	}
	next := spine
	for s := 0; s < spine; s++ {
		prev := s
		for t := 0; t < toothLen; t++ {
			parent[next] = prev
			prev = next
			next++
		}
	}
	return MustFromParents(parent)
}

// RelabelRandom returns a copy of t whose vertices have been renamed by a
// random permutation (the root keeps no special id). Generators above
// produce correlated ids (e.g. BFS numbering); relabeling removes that
// structure so layout experiments don't accidentally benefit from it.
func RelabelRandom(t *Tree, r *rng.RNG) *Tree {
	n := t.N()
	perm := r.Perm(n) // old id -> new id
	parent := make([]int, n)
	for v := 0; v < n; v++ {
		p := t.Parent(v)
		if p == -1 {
			parent[perm[v]] = -1
		} else {
			parent[perm[v]] = perm[p]
		}
	}
	return MustFromParents(parent)
}
