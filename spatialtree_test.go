package spatialtree

import (
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	tr := RandomTree(500, 42)
	pl, err := Layout(tr, "hilbert")
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, tr.N())
	for i := range vals {
		vals[i] = 1
	}
	res := TreefixSum(tr, pl, vals)
	if res.Sums[tr.Root()] != int64(tr.N()) {
		t.Fatalf("root subtree sum = %d, want %d", res.Sums[tr.Root()], tr.N())
	}
	if res.Cost.Energy <= 0 || res.Cost.Depth <= 0 || res.Rounds <= 0 {
		t.Fatalf("implausible cost: %+v", res)
	}
	want := SequentialTreefix(tr, vals, OpAdd)
	for v := range want {
		if res.Sums[v] != want[v] {
			t.Fatalf("treefix mismatch at %d", v)
		}
	}
}

func TestPublicAPITopDown(t *testing.T) {
	tr := RandomBinaryTree(300, 7)
	pl, _ := Layout(tr, "zorder")
	vals := make([]int64, tr.N())
	for i := range vals {
		vals[i] = 1
	}
	res := TopDownTreefix(tr, pl, vals, OpAdd, 3)
	depths := tr.Depths()
	for v := 0; v < tr.N(); v++ {
		if res.Sums[v] != int64(depths[v]+1) {
			t.Fatalf("top-down with ones should count path length: v=%d got %d want %d",
				v, res.Sums[v], depths[v]+1)
		}
	}
}

func TestPublicAPILCA(t *testing.T) {
	tr := PhylogeneticTree(200, 11)
	pl, _ := Layout(tr, "hilbert")
	oracle := LCAOracle(tr)
	qs := []Query{{U: 1, V: 2}, {U: 5, V: 300}, {U: 0, V: 17}}
	res := BatchedLCA(tr, pl, qs, 1)
	for i, q := range qs {
		if res.Answers[i] != oracle.LCA(q.U, q.V) {
			t.Fatalf("query %v = %d, want %d", q, res.Answers[i], oracle.LCA(q.U, q.V))
		}
	}
	if res.Layers <= 0 {
		t.Fatal("layers not reported")
	}
}

func TestPublicAPILayoutConstruction(t *testing.T) {
	tr := RandomTree(300, 5)
	ranks, cost, err := BuildLayoutOnMachine(tr, "hilbert", 9)
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := Layout(tr, "hilbert")
	for v := 0; v < tr.N(); v++ {
		if ranks[v] != pl.Order.Rank[v] {
			t.Fatalf("machine-built layout differs at %d", v)
		}
	}
	if cost.Energy <= 0 {
		t.Fatal("no cost recorded")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	tr := RandomTree(10, 1)
	if _, err := Layout(tr, "nope"); err == nil {
		t.Fatal("expected curve error")
	}
	if _, err := LayoutWithOrder(tr, "nope", "hilbert", 1); err == nil {
		t.Fatal("expected order error")
	}
	if _, err := LayoutWithOrder(tr, "bfs", "nope", 1); err == nil {
		t.Fatal("expected curve error")
	}
	if _, _, err := BuildLayoutOnMachine(tr, "nope", 1); err == nil {
		t.Fatal("expected curve error")
	}
	if _, err := NewTree([]int{0, 0}); err == nil {
		t.Fatal("expected invalid tree error")
	}
}

func TestPublicAPIBaselineLayouts(t *testing.T) {
	tr := RandomTree(1000, 3)
	lf, _ := Layout(tr, "hilbert")
	bfs, err := LayoutWithOrder(tr, "bfs", "hilbert", 1)
	if err != nil {
		t.Fatal(err)
	}
	if KernelEnergy(bfs).Energy < KernelEnergy(lf).Energy {
		t.Fatal("BFS layout should not beat light-first on a random tree")
	}
}

func TestPublicAPIParallelEngines(t *testing.T) {
	tr := RandomTree(2000, 9)
	vals := make([]int64, tr.N())
	for i := range vals {
		vals[i] = int64(i % 13)
	}
	e := ParallelTreefixEngine(tr, 4)
	got := e.BottomUpSum(vals)
	want := SequentialTreefix(tr, vals, OpAdd)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("parallel engine mismatch at %d", v)
		}
	}
	le := ParallelLCAEngine(tr, 4)
	o := LCAOracle(tr)
	if le.BatchLCA([]Query{{U: 100, V: 200}})[0] != o.LCA(100, 200) {
		t.Fatal("parallel LCA engine mismatch")
	}
}

func TestPublicAPIApplications(t *testing.T) {
	tr := RandomBinaryTree(100, 21)
	pl, _ := Layout(tr, "hilbert")

	// Expression evaluation.
	e := RandomExpression(100, 22)
	ep, _ := Layout(e.Tree, "hilbert")
	got, cost := EvaluateExpression(e, ep)
	if want := e.EvalSequential()[e.Tree.Root()]; got != want {
		t.Fatalf("expression eval = %d, want %d", got, want)
	}
	if cost.Energy <= 0 {
		t.Fatal("no cost recorded for expression eval")
	}

	// Minimum cut.
	edges := []GraphEdge{}
	for v := 1; v < tr.N(); v++ {
		edges = append(edges, GraphEdge{U: tr.Parent(v), V: v, W: 2})
	}
	res, cutCost, err := OneRespectingMinCut(tr, pl, edges, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.MinWeight != 2 {
		t.Fatalf("tree-only graph min cut = %d, want 2", res.MinWeight)
	}
	if cutCost.Energy <= 0 {
		t.Fatal("no cost recorded for min cut")
	}
}

func TestPublicAPIDynamicLayout(t *testing.T) {
	tr := RandomTree(200, 30)
	d, err := NewDynamicLayout(tr, "hilbert", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := d.InsertLeaf(i % d.N()); err != nil {
			t.Fatal(err)
		}
	}
	if d.N() != 500 {
		t.Fatalf("n = %d", d.N())
	}
	fresh, err := d.FreshKernelCost()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(d.KernelCost().Energy) / float64(fresh.Energy)
	if ratio > 4 {
		t.Fatalf("dynamic layout drifted to %.2fx", ratio)
	}
	if _, err := NewDynamicLayout(tr, "nope", 0.2); err == nil {
		t.Fatal("expected curve error")
	}
}

func TestCurveRegistryExposed(t *testing.T) {
	if len(Curves()) < 6 {
		t.Fatal("curve registry too small")
	}
	c, err := CurveByName("hilbert")
	if err != nil || c.Name() != "hilbert" {
		t.Fatal("CurveByName broken")
	}
}

func TestPublicAPIDynEngine(t *testing.T) {
	tr := RandomTree(300, 31)
	cache := NewLayoutCache(8)
	eng, err := NewDynEngine(tr, DynEngineOptions{
		Options: EngineOptions{Curve: "hilbert", Window: 8, Cache: cache},
		Epsilon: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("construction published %d cache entries, want 1", cache.Len())
	}

	// Serve, mutate, serve again: results must track the current tree.
	ones := make([]int64, eng.N())
	for i := range ones {
		ones[i] = 1
	}
	if res := eng.SubmitTreefix(ones, OpAdd).Wait(); res.Err != nil || res.Sums[tr.Root()] != 300 {
		t.Fatalf("initial treefix: err=%v rootsum=%v", res.Err, res.Sums[tr.Root()])
	}
	v, err := eng.InsertLeaf(0)
	if err != nil {
		t.Fatal(err)
	}
	if res := eng.SubmitLCA([]Query{{U: v, V: 1}}).Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if _, err := eng.DeleteLeaf(v); err != nil {
		t.Fatal(err)
	}
	ones = ones[:eng.N()]
	if res := eng.SubmitTreefix(ones, OpAdd).Wait(); res.Err != nil || res.Sums[tr.Root()] != 300 {
		t.Fatalf("post-churn treefix: err=%v rootsum=%v", res.Err, res.Sums[tr.Root()])
	}

	// Invalid inputs come back as errors — never panics — through every
	// exported entry point.
	if _, err := eng.InsertLeaf(-5); err == nil {
		t.Error("bad parent accepted")
	}
	if _, err := eng.DeleteLeaf(0); err == nil {
		t.Error("root deletion accepted")
	}
	if res := eng.SubmitTreefix(make([]int64, 2), OpAdd).Wait(); res.Err == nil {
		t.Error("short vals accepted")
	}
	if res := eng.SubmitLCA([]Query{{U: 0, V: 1 << 20}}).Wait(); res.Err == nil {
		t.Error("out-of-range query accepted")
	}
	if _, err := NewDynEngine(tr, DynEngineOptions{Options: EngineOptions{Curve: "warp"}}); err == nil {
		t.Error("unknown curve accepted")
	}

	st := eng.Stats()
	if st.Epoch != 2 || st.Inserts != 1 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Engine.Requests == 0 {
		t.Fatal("inner engine requests not counted")
	}
	// Mutations superseded the construction placement and no dynlayout
	// rebuild has happened yet, so the stale entry is invalidated and
	// nothing replaces it until the next rebuild boundary.
	if cache.Len() != 0 {
		t.Fatalf("cache holds %d entries after mutations, want 0 (stale invalidated)", cache.Len())
	}
}

func TestPublicAPIDynamicLayoutDelete(t *testing.T) {
	tr := RandomTree(100, 32)
	d, err := NewDynamicLayout(tr, "hilbert", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.InsertLeaf(0)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := d.DeleteLeaf(v)
	if err != nil {
		t.Fatal(err)
	}
	if moved != v {
		t.Fatalf("deleting the last id moved %d", moved)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Tree(); err != nil {
		t.Fatal(err)
	}
}
