// Command treelab explores tree layouts interactively: generate a tree
// family, lay it out under a chosen order and curve, and report the
// local-messaging kernel costs (the quantities Theorems 1 and 2 bound),
// optionally rendering the placement as ASCII.
//
// Usage examples:
//
//	treelab -family caterpillar -n 4096 -order dfs -curve hilbert
//	treelab -family random -n 1024 -all-orders
//	treelab -family star -n 64 -draw
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spatialtree/internal/layout"
	"spatialtree/internal/order"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/xstat"
)

func buildTree(family string, n int, r *rng.RNG) (*tree.Tree, error) {
	switch family {
	case "path":
		return tree.Path(n), nil
	case "star":
		return tree.Star(n), nil
	case "caterpillar":
		return tree.Caterpillar(n), nil
	case "broom":
		return tree.Broom(n), nil
	case "random":
		return tree.RandomAttachment(n, r), nil
	case "random-bin":
		return tree.RandomBoundedDegree(n, 2, r), nil
	case "preferential":
		return tree.PreferentialAttachment(n, r), nil
	case "yule":
		return tree.Yule((n+1)/2, r), nil
	case "perfect-bin":
		levels := 1
		for (1<<levels)-1 < n {
			levels++
		}
		return tree.PerfectBinary(levels), nil
	case "comb":
		return tree.Comb(n/4+1, 3), nil
	}
	return nil, fmt.Errorf("unknown family %q", family)
}

// Families lists the -family values.
const families = "path star caterpillar broom random random-bin preferential yule perfect-bin comb"

func main() {
	var (
		family    = flag.String("family", "random", "tree family: "+families)
		n         = flag.Int("n", 1024, "approximate vertex count")
		orderName = flag.String("order", "light-first", "vertex order: "+strings.Join(order.Names(), " "))
		curveName = flag.String("curve", "hilbert", "space-filling curve")
		seed      = flag.Uint64("seed", 42, "random seed")
		allOrders = flag.Bool("all-orders", false, "compare every order on the chosen curve")
		allCurves = flag.Bool("all-curves", false, "compare every curve with the chosen order")
		draw      = flag.Bool("draw", false, "render the placement as ASCII (small n)")
	)
	flag.Parse()
	r := rng.New(*seed)

	t, err := buildTree(*family, *n, r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "treelab:", err)
		os.Exit(2)
	}
	st := t.Summarize()
	fmt.Printf("tree: family=%s n=%d height=%d maxdeg=%d leaves=%d\n\n",
		*family, st.N, st.Height, st.MaxDegree, st.Leaves)

	measure := func(oName, cName string) (*layout.Placement, layout.Report, error) {
		c, err := sfc.ByName(cName)
		if err != nil {
			return nil, layout.Report{}, err
		}
		o, ok := order.ByName(oName, t, rng.New(*seed))
		if !ok {
			return nil, layout.Report{}, fmt.Errorf("unknown order %q", oName)
		}
		p := layout.New(t, o, c)
		return p, layout.Measure(p), nil
	}

	tb := &xstat.Table{
		Title:  "layout kernel costs (each vertex messages its children once)",
		Header: []string{"order", "curve", "side", "energy", "energy/vertex", "per-msg", "max-edge"},
	}
	add := func(rep layout.Report) {
		tb.Add(rep.Order, rep.Curve, xstat.I(rep.Side), xstat.I(rep.Kernel.Energy),
			xstat.F(rep.Kernel.PerVertex, 3), xstat.F(rep.Kernel.PerMessage, 2),
			xstat.I(rep.Kernel.MaxDist))
	}

	var shown *layout.Placement
	switch {
	case *allOrders:
		for _, oName := range order.Names() {
			p, rep, err := measure(oName, *curveName)
			if err != nil {
				fmt.Fprintln(os.Stderr, "treelab:", err)
				os.Exit(2)
			}
			if oName == *orderName {
				shown = p
			}
			add(rep)
		}
	case *allCurves:
		for _, c := range sfc.Registry() {
			p, rep, err := measure(*orderName, c.Name())
			if err != nil {
				fmt.Fprintln(os.Stderr, "treelab:", err)
				os.Exit(2)
			}
			if c.Name() == *curveName {
				shown = p
			}
			add(rep)
		}
	default:
		p, rep, err := measure(*orderName, *curveName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "treelab:", err)
			os.Exit(2)
		}
		shown = p
		add(rep)
	}
	fmt.Println(tb.String())

	if *draw && shown != nil {
		if shown.Side > 64 {
			fmt.Println("(grid too large to draw; use -n <= 4096)")
			return
		}
		fmt.Println(render(shown))
	}
}

// render draws the grid, marking each cell with the depth class of the
// vertex stored there ('.' = empty, digits = depth mod 10, 'R' = root).
func render(p *layout.Placement) string {
	side := p.Side
	grid := make([][]byte, side)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(".", side))
	}
	depths := p.Tree.Depths()
	for v := 0; v < p.Tree.N(); v++ {
		x, y := p.Pos(v)
		switch {
		case v == p.Tree.Root():
			grid[y][x] = 'R'
		default:
			grid[y][x] = byte('0' + depths[v]%10)
		}
	}
	var b strings.Builder
	for y := side - 1; y >= 0; y-- { // y grows upward
		b.Write(grid[y])
		b.WriteByte('\n')
	}
	return b.String()
}
