// Command spatialserve replays mixed treefix / LCA / min-cut traffic
// against the batched query engine and prints throughput, modeling the
// serving shape the ROADMAP targets: many clients issuing small batches
// against a forest of long-lived trees.
//
// Each round, every client picks a tree from the forest, rebuilds it
// from its parent array (so the layout cache is exercised the way a
// server deserializing per-request tree ids would exercise it), submits
// one treefix plus several LCA sub-batches to the pool's engine for that
// tree, and waits for the coalesced results. The naive comparison point
// (-naive) replays identical traffic through the one-shot public API
// shape: every call rebuilds the light-first layout and runs on its own
// simulator.
//
// With -churn k > 0 the forest becomes mutable: one round in k first
// applies a mutation pair (insert a leaf under a random original
// vertex, delete the youngest inserted leaf) before serving. In engine
// mode the forest is served by DynEngine shards routed by identity
// through the pool; mutations are O(1) parked moves and the serving
// placement refreshes lazily. In -naive mode every mutation pays a
// from-scratch tree validation + light-first rebuild — the
// rebuild-per-mutation baseline the dynamic path is measured against.
//
// By default the engines run under the background autoflush scheduler
// (-flush-delay): waiting clients no longer force a flush, so a round's
// sub-batches keep coalescing with other clients' until the window
// fills or the deadline fires — the same adaptive batching the
// spatialtreed daemon serves over HTTP. -flush-delay 0 restores the
// explicit Flush/Wait semantics of the earlier PRs.
//
// Usage:
//
//	spatialserve                           # defaults: 4 trees × 64 rounds
//	spatialserve -n 16384 -trees 8 -clients 16 -rounds 128
//	spatialserve -naive                    # per-call baseline for the same traffic
//	spatialserve -churn 4                  # mutable forest: 1 in 4 rounds mutates
//	spatialserve -churn 4 -naive           # naive rebuild-per-mutation baseline
//	spatialserve -flush-delay 0            # disable the autoflush scheduler
//	spatialserve -tcp localhost:8373       # remote: binary protocol against spatialtreed
//
// With -tcp the traffic goes out over the length-prefixed binary
// protocol (internal/wire, docs/protocol.md) to a running spatialtreed
// -tcp-addr listener: one pipelined connection per client, queries
// routed by parent array, backpressure answers counted rather than
// fatal. -naive, -churn and -restart are in-process-only knobs.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"spatialtree/internal/dynlayout"
	"spatialtree/internal/engine"
	"spatialtree/internal/exec"
	"spatialtree/internal/layout"
	"spatialtree/internal/lca"
	"spatialtree/internal/machine"
	"spatialtree/internal/mincut"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
	"spatialtree/internal/wire"
)

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"spatialserve:"}, args...)...)
	os.Exit(1)
}

func main() {
	var (
		n       = flag.Int("n", 1<<12, "vertices per tree")
		trees   = flag.Int("trees", 4, "distinct trees in the forest")
		clients = flag.Int("clients", 8, "concurrent client goroutines")
		rounds  = flag.Int("rounds", 64, "request rounds per client")
		queries = flag.Int("queries", 256, "LCA queries per round")
		subs    = flag.Int("sub-batches", 4, "LCA sub-batches the queries arrive in")
		window  = flag.Int("window", 16, "engine auto-flush window")
		workers = flag.Int("workers", 0, "pool flush workers (0 = GOMAXPROCS)")
		curve   = flag.String("curve", "hilbert", "space-filling curve")
		seed    = flag.Uint64("seed", 42, "workload seed")
		naive   = flag.Bool("naive", false, "replay through the per-call API instead of the engine")
		cutSh   = flag.Int("mincut-share", 8, "1 in k rounds is a min-cut request (0 = none)")
		churn   = flag.Int("churn", 0, "1 in k rounds mutates its tree (insert+delete) before serving (0 = immutable forest)")
		restart = flag.Int("restart", 4, "immutable forest only: 1 in k rounds uses an ephemeral engine rebuilt from the shared cache, modeling shard restarts (0 = never)")
		epsilon = flag.Float64("epsilon", 0.2, "dynamic layout rebuild threshold (churn mode)")
		fldelay = flag.Duration("flush-delay", time.Millisecond, "autoflush scheduler deadline; 0 disables the scheduler (explicit Flush/Wait semantics)")
		backend = flag.String("backend", "native", "engine execution backend: native (goroutine-parallel) or sim (model-cost metering)")
		shadow  = flag.Int("shadow-meter", 0, "with -backend native, sample 1 in N batches through a shadow sim run (0 = off)")
		tcp     = flag.String("tcp", "", "replay against a remote spatialtreed binary-protocol listener at this address instead of in-process (see docs/protocol.md; incompatible with -naive/-churn/-restart)")
	)
	flag.Parse()

	if *tcp != "" {
		if *naive || *churn > 0 {
			fatal("-tcp is remote load generation; -naive and -churn only apply in-process")
		}
		runRemote(*tcp, *n, *trees, *clients, *rounds, *queries, *subs, *cutSh, *seed)
		return
	}

	if !exec.Valid(*backend) {
		fatal("-backend must be one of", exec.Names())
	}

	crv, err := sfc.ByName(*curve)
	if err != nil {
		fatal(err)
	}
	if *subs < 1 {
		*subs = 1
	}

	// The forest: per-tree parent arrays, rebuilt into fresh Tree values
	// per round to model deserialized requests (the cache key is the
	// structural fingerprint, not the pointer).
	parents := make([][]int, *trees)
	edgesOf := make([][]mincut.Edge, *trees)
	for i := range parents {
		t := tree.RandomAttachment(*n, rng.New(*seed+uint64(i)))
		parents[i] = append([]int(nil), t.Parents()...)
		edgesOf[i] = mincut.RandomGraph(t, *n/4, 10, rng.New(*seed+100+uint64(i)))
	}

	opts := engine.Options{
		Curve:       *curve,
		Window:      *window,
		Seed:        *seed,
		Cache:       engine.NewLayoutCache(2 * *trees),
		FlushDelay:  *fldelay,
		Backend:     *backend,
		ShadowMeter: *shadow,
	}
	pool := engine.NewPool(*workers, opts)

	// Churn mode: one mutable shard per tree. Engine mode routes by
	// identity through the pool's dyn registry; naive mode keeps a bare
	// dynamic layout as the mutable structure and rebuilds from it.
	// The per-shard mutex serializes a mutation with the rounds served
	// against it, so a round's vals length always matches its tree.
	var shards []*mutShard
	if *churn > 0 {
		shards = make([]*mutShard, *trees)
		for i := range shards {
			t := tree.MustFromParents(parents[i])
			sh := &mutShard{origN: *n}
			if *naive {
				d, err := dynlayout.New(t, crv, *epsilon)
				if err != nil {
					fatal(err)
				}
				sh.naive, sh.tree = d, d
			} else {
				de, err := pool.NewDynShard(t, *epsilon)
				if err != nil {
					fatal(err)
				}
				sh.eng, sh.tree = de, de
			}
			shards[i] = sh
		}
	}

	var (
		mu        sync.Mutex
		queriesN  int64
		mutations int64
		naiveCost machine.Cost
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(*seed ^ uint64(c)*0x9e3779b97f4a7c15)
			for round := 0; round < *rounds; round++ {
				ti := r.Intn(*trees)
				var served, muts int
				var cost machine.Cost
				wantCut := *cutSh > 0 && (c+round)%*cutSh == 0
				if *churn > 0 {
					mutate := (c+round)%*churn == 0
					served, muts, cost = runMutable(shards[ti], mutate, r, *queries, *subs, wantCut, edgesOf[ti], *naive, crv, *seed)
				} else {
					t := tree.MustFromParents(parents[ti])
					ephemeral := *restart > 0 && (c+round)%*restart == 0
					if wantCut && t.N() >= 2 {
						served, cost = runMinCut(pool, opts, ephemeral, t, edgesOf[ti], *naive, crv, *seed)
					} else {
						served, cost = runMixed(pool, opts, ephemeral, t, r, *queries, *subs, *naive, crv, *seed)
					}
				}
				mu.Lock()
				queriesN += int64(served)
				mutations += int64(muts)
				naiveCost = naiveCost.Plus(cost)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	pool.FlushAll()
	elapsed := time.Since(start)

	mode := "engine"
	if *naive {
		mode = "naive"
	}
	totalRounds := int64(*clients) * int64(*rounds)
	fmt.Printf("mode=%s trees=%d n=%d clients=%d rounds=%d sub-batches=%d window=%d curve=%s churn=%d\n",
		mode, *trees, *n, *clients, *rounds, *subs, *window, *curve, *churn)
	fmt.Printf("wall=%v  rounds/s=%.1f  queries/s=%.1f  mutations=%d\n",
		elapsed.Round(time.Millisecond),
		float64(totalRounds)/elapsed.Seconds(),
		float64(queriesN)/elapsed.Seconds(),
		mutations)
	if *naive {
		fmt.Printf("model: energy=%d messages=%d depth=%d (summed over per-call runs)\n",
			naiveCost.Energy, naiveCost.Messages, naiveCost.Depth)
		return
	}
	st := pool.Stats()
	ephemMu.Lock()
	st.Add(ephemStats)
	ephemMu.Unlock()
	switch {
	case *backend == exec.Sim:
		fmt.Printf("model: energy=%d messages=%d depth=%d (summed over batch runs)\n",
			st.Cost.Energy, st.Cost.Messages, st.Cost.Depth)
	case st.ShadowBatches > 0:
		fmt.Printf("model: energy=%d messages=%d depth=%d (sampled: %d of %d batches shadow-metered, %d mismatches)\n",
			st.Cost.Energy, st.Cost.Messages, st.Cost.Depth, st.ShadowBatches, st.Batches, st.ShadowMismatches)
	default:
		fmt.Printf("model: unmetered (backend=%s; use -backend sim or -shadow-meter N for model costs)\n", *backend)
	}
	fmt.Printf("engine: batches=%d requests=%d coalescing=%.1f req/batch lca-queries=%d lca-runs=%d\n",
		st.Batches, st.Requests, float64(st.Requests)/float64(max64(st.Batches, 1)),
		st.LCAQueries, st.LCARuns)
	fmt.Printf("scheduler: size-flushes=%d deadline-flushes=%d flush-delay=%v\n",
		st.SizeFlushes, st.DeadlineFlushes, *fldelay)
	fmt.Printf("cache: hits=%d misses=%d evictions=%d size=%d hit-rate=%.1f%%\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions, st.Cache.Size,
		100*st.Cache.HitRate())
	if *churn > 0 {
		var epoch, rebuilds, refreshes uint64
		var park, migrate int64
		for _, sh := range shards {
			ds := sh.eng.Stats()
			epoch += ds.Epoch
			rebuilds += ds.Rebuilds
			refreshes += ds.Refreshes
			park += ds.ParkEnergy
			migrate += ds.MigrateEnergy
		}
		fmt.Printf("dyn: epoch=%d refreshes=%d layout-rebuilds=%d park-energy=%d migrate-energy=%d\n",
			epoch, refreshes, rebuilds, park, migrate)
	}
}

// runRemote replays the immutable-forest traffic shape against a
// spatialtreed binary-protocol listener: every client holds one
// pipelined connection, routes each query by its tree's parent array
// (the deserializing-server shape the local mode models with
// MustFromParents) and issues one treefix plus the round's LCA
// sub-batches per round. Backpressure answers (StatusTooMany,
// StatusUnavailable) are counted and retried-as-lost rather than
// fatal, so the generator can be pointed at a saturated daemon.
func runRemote(addr string, n, trees, clients, rounds, nq, subs, cutSh int, seed uint64) {
	parents := make([][]int, trees)
	edgesOf := make([][]wire.Edge, trees)
	for i := range parents {
		t := tree.RandomAttachment(n, rng.New(seed+uint64(i)))
		parents[i] = append([]int(nil), t.Parents()...)
		for _, e := range mincut.RandomGraph(t, n/4, 10, rng.New(seed+100+uint64(i))) {
			edgesOf[i] = append(edgesOf[i], wire.Edge{U: e.U, V: e.V, W: e.W})
		}
	}

	var (
		mu       sync.Mutex
		queriesN int64
		rejected int64
	)
	conns := make([]*wire.Client, clients)
	for c := range conns {
		cl, err := wire.Dial(addr, wire.DialOptions{DialTimeout: 5 * time.Second})
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
		conns[c] = cl
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := conns[c]
			r := rng.New(seed ^ uint64(c)*0x9e3779b97f4a7c15)
			var served, lost int64
			do := func(q *wire.Query) int {
				_, err := cl.Do(q)
				var we *wire.Error
				switch {
				case err == nil:
					return 1
				case errors.As(err, &we) && (we.Status == wire.StatusTooMany || we.Status == wire.StatusUnavailable):
					lost++
					return 0
				default:
					fatal(err)
					return 0
				}
			}
			for round := 0; round < rounds; round++ {
				ti := r.Intn(trees)
				if cutSh > 0 && (c+round)%cutSh == 0 {
					q := wire.Query{Kind: wire.KindMinCut, Parents: parents[ti], Edges: edgesOf[ti]}
					served += int64(do(&q) * len(edgesOf[ti]))
					continue
				}
				vals := make([]int64, n)
				for i := range vals {
					vals[i] = int64(r.Intn(1000))
				}
				q := wire.Query{Kind: wire.KindTreefix, Parents: parents[ti], Op: "add", Vals: vals}
				served += int64(do(&q) * n)
				for _, qs := range splitQueries(r, nq, subs, n) {
					wqs := make([]wire.LCAQuery, len(qs))
					for i, lq := range qs {
						wqs[i] = wire.LCAQuery{U: lq.U, V: lq.V}
					}
					q := wire.Query{Kind: wire.KindLCA, Parents: parents[ti], Queries: wqs}
					served += int64(do(&q) * len(wqs))
				}
			}
			mu.Lock()
			queriesN += served
			rejected += lost
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("mode=remote addr=%s trees=%d n=%d clients=%d rounds=%d sub-batches=%d\n",
		addr, trees, n, clients, rounds, subs)
	fmt.Printf("wall=%v  rounds/s=%.1f  queries/s=%.1f  backpressured=%d\n",
		elapsed.Round(time.Millisecond),
		float64(int64(clients)*int64(rounds))/elapsed.Seconds(),
		float64(queriesN)/elapsed.Seconds(),
		rejected)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// mutShard is one mutable tree of the churn-mode forest: a DynEngine in
// engine mode, a bare dynamic layout (rebuilt from scratch per
// mutation) in naive mode. tree is whichever of the two is live.
type mutShard struct {
	mu    sync.Mutex
	origN int
	tree  dynlayout.MutTree
	eng   *engine.DynEngine
	naive *dynlayout.Dyn
}

// mutate applies the churn pair: insert a leaf under a random original
// vertex, delete the youngest inserted leaf (never an original id, so
// query ids stay valid across the run). The after hook (when non-nil)
// runs once per applied mutation — the naive arm hangs its
// per-mutation rebuild on it.
func (sh *mutShard) mutate(r *rng.RNG, after func()) int {
	muts := 1
	if _, err := sh.tree.InsertLeaf(r.Intn(sh.origN)); err != nil {
		fatal(err)
	}
	if after != nil {
		after()
	}
	ok, err := dynlayout.DeleteYoungestLeaf(sh.tree, sh.origN)
	if err != nil {
		fatal(err)
	}
	if ok {
		muts++
		if after != nil {
			after()
		}
	}
	return muts
}

// runMutable serves one churn-mode round: an optional mutation pair,
// then the usual mixed traffic against the mutable shard. In naive
// mode, the tree is revalidated and the light-first layout rebuilt from
// scratch for every call — and once more after each mutation — which is
// exactly the rebuild-per-mutation baseline.
func runMutable(sh *mutShard, mutate bool, r *rng.RNG, nq, subs int, wantCut bool, edges []mincut.Edge, naive bool, crv sfc.Curve, seed uint64) (served, muts int, cost machine.Cost) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if mutate {
		// In naive mode every applied mutation pays the rebuild a
		// static deployment would: revalidate the tree and rerun the
		// light-first pipeline from scratch.
		var after func()
		if naive {
			after = func() {
				t, err := sh.naive.Tree()
				if err != nil {
					fatal(err)
				}
				layout.LightFirst(t, crv)
			}
		}
		muts = sh.mutate(r, after)
	}

	if naive {
		t, err := sh.naive.Tree()
		if err != nil {
			fatal(err)
		}
		if wantCut {
			s, c := naiveMinCut(t, edges, crv, seed)
			return s, muts, c
		}
		s, c := naiveMixed(t, r, nq, subs, crv, seed)
		return s, muts, c
	}

	de := sh.eng
	n := de.N()
	if wantCut {
		//spatialvet:ignore waitunderlock -- sh.mu serializes whole churn rounds per shard by design; engine workers never take it, so no cycle
		if res := de.SubmitMinCut(edges).Wait(); res.Err != nil {
			fatal(res.Err)
		}
		return len(edges), muts, machine.Cost{}
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(r.Intn(1000))
	}
	futs := make([]*engine.Future, 0, subs+1)
	futs = append(futs, de.SubmitTreefix(vals, treefix.Add))
	for _, qs := range splitQueries(r, nq, subs, sh.origN) {
		futs = append(futs, de.SubmitLCA(qs))
	}
	for _, f := range futs {
		//spatialvet:ignore waitunderlock -- sh.mu serializes whole churn rounds per shard by design; engine workers never take it, so no cycle
		if res := f.Wait(); res.Err != nil {
			fatal("request failed:", res.Err)
		}
	}
	return nq + n, muts, machine.Cost{}
}

// splitQueries draws nq random LCA queries over [0, idRange) in subs
// sub-batches.
func splitQueries(r *rng.RNG, nq, subs, idRange int) [][]lca.Query {
	batches := make([][]lca.Query, subs)
	per := (nq + subs - 1) / subs
	for b := range batches {
		m := per
		if (b+1)*per > nq {
			m = nq - b*per
		}
		if m < 0 {
			m = 0
		}
		qs := make([]lca.Query, m)
		for i := range qs {
			qs[i] = lca.Query{U: r.Intn(idRange), V: r.Intn(idRange)}
		}
		batches[b] = qs
	}
	return batches
}

// naiveMixed replays one round through the per-call API shape: every
// call rebuilds the layout and runs on its own simulator.
func naiveMixed(t *tree.Tree, r *rng.RNG, nq, subs int, crv sfc.Curve, seed uint64) (int, machine.Cost) {
	n := t.N()
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(r.Intn(1000))
	}
	var cost machine.Cost
	p := layout.LightFirst(t, crv)
	s := machine.New(n, p.Curve)
	treefix.BottomUp(s, t, p.Order.Rank, vals, treefix.Add, rng.New(seed))
	cost = cost.Plus(s.Cost())
	for _, qs := range splitQueries(r, nq, subs, n) {
		p := layout.LightFirst(t, crv)
		s := machine.New(n, p.Curve)
		lca.Batched(s, t, p.Order.Rank, qs, rng.New(seed))
		cost = cost.Plus(s.Cost())
	}
	return nq + n, cost
}

func naiveMinCut(t *tree.Tree, edges []mincut.Edge, crv sfc.Curve, seed uint64) (int, machine.Cost) {
	p := layout.LightFirst(t, crv)
	s := machine.New(t.N(), p.Curve)
	if _, err := mincut.OneRespecting(s, t, p.Order.Rank, edges, rng.New(seed)); err != nil {
		fatal(err)
	}
	return len(edges), s.Cost()
}

// Counters of ephemeral (restart-round) engines, which live outside the
// pool and would otherwise vanish from the final report.
var (
	ephemMu    sync.Mutex
	ephemStats engine.Stats
)

// engineFor returns the pool's long-lived shard for t, or — on restart
// rounds — an ephemeral engine whose placement comes from the shared
// layout cache (the restart path the cache exists for). The returned
// retire func must be called after the round's futures resolve; it
// folds an ephemeral engine's counters into the report.
func engineFor(pool *engine.Pool, opts engine.Options, ephemeral bool, t *tree.Tree) (*engine.Engine, func()) {
	if ephemeral {
		// No scheduler on a round-private engine: nothing else can join
		// its batches, so Wait should flush at once instead of sleeping
		// out the autoflush deadline.
		opts.FlushDelay = 0
		eng, err := engine.New(t, opts)
		if err != nil {
			fatal(err)
		}
		return eng, func() {
			st := eng.Stats()
			ephemMu.Lock()
			ephemStats.Add(st)
			ephemMu.Unlock()
		}
	}
	eng, err := pool.Engine(t)
	if err != nil {
		fatal(err)
	}
	return eng, func() {}
}

// runMixed issues one treefix plus the round's LCA queries split into
// subs sub-batches, and returns the number of individual queries served
// plus (naive mode only) the exact model cost of the per-call runs.
func runMixed(pool *engine.Pool, opts engine.Options, ephemeral bool, t *tree.Tree, r *rng.RNG, nq, subs int, naive bool, crv sfc.Curve, seed uint64) (int, machine.Cost) {
	if naive {
		return naiveMixed(t, r, nq, subs, crv, seed)
	}
	n := t.N()
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(r.Intn(1000))
	}
	eng, retire := engineFor(pool, opts, ephemeral, t)
	futs := make([]*engine.Future, 0, subs+1)
	futs = append(futs, eng.SubmitTreefix(vals, treefix.Add))
	for _, qs := range splitQueries(r, nq, subs, n) {
		futs = append(futs, eng.SubmitLCA(qs))
	}
	for _, f := range futs {
		if res := f.Wait(); res.Err != nil {
			fatal("request failed:", res.Err)
		}
	}
	retire()
	return nq + n, machine.Cost{}
}

func runMinCut(pool *engine.Pool, opts engine.Options, ephemeral bool, t *tree.Tree, edges []mincut.Edge, naive bool, crv sfc.Curve, seed uint64) (int, machine.Cost) {
	if naive {
		return naiveMinCut(t, edges, crv, seed)
	}
	eng, retire := engineFor(pool, opts, ephemeral, t)
	if res := eng.SubmitMinCut(edges).Wait(); res.Err != nil {
		fatal(res.Err)
	}
	retire()
	return len(edges), machine.Cost{}
}
