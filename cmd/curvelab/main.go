// Command curvelab inspects the space-filling curves: renders them as
// ASCII, measures their distance-bound constants (Section III-B of the
// paper) and alignment factors (Lemmas 3-4).
//
// Usage examples:
//
//	curvelab -curve hilbert -side 8 -draw
//	curvelab -measure -side 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spatialtree/internal/sfc"
	"spatialtree/internal/xstat"
)

func main() {
	var (
		name    = flag.String("curve", "hilbert", "curve name (or 'all')")
		side    = flag.Int("side", 16, "grid side (rounded up to the curve's legal side)")
		draw    = flag.Bool("draw", false, "render curve indices on the grid")
		measure = flag.Bool("measure", false, "measure distance-bound and alignment constants")
	)
	flag.Parse()

	var curves []sfc.Curve
	if *name == "all" {
		curves = sfc.Registry()
	} else {
		c, err := sfc.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "curvelab:", err)
			os.Exit(2)
		}
		curves = []sfc.Curve{c}
	}

	if *measure {
		tb := &xstat.Table{
			Title:  "curve locality constants",
			Header: []string{"curve", "side", "alpha (dist/√gap)", "continuous", "closed", "align(all)", "align(aligned)"},
		}
		for _, c := range curves {
			s := c.Side(*side * *side)
			db := sfc.MeasureDistanceBoundSampled(c, s)
			tb.Add(c.Name(), xstat.I(s), xstat.F(db.Alpha, 3),
				fmt.Sprint(sfc.IsContinuous(c, s)), fmt.Sprint(sfc.IsClosed(c, s)),
				xstat.F(sfc.AlignmentFactor(c, min(s, 32)), 2),
				xstat.F(sfc.AlignedWindowFactor(c, min(s, 32)), 2))
		}
		fmt.Println(tb.String())
	}

	if *draw || !*measure {
		for _, c := range curves {
			s := c.Side(*side * *side)
			if s > 32 {
				fmt.Printf("%s: side %d too large to draw (use -side <= 32)\n", c.Name(), s)
				continue
			}
			fmt.Printf("%s (side %d):\n%s\n", c.Name(), s, render(c, s))
		}
	}
}

// render prints the curve's linear index at each grid cell, row y =
// side-1 (top) down to 0.
func render(c sfc.Curve, side int) string {
	width := len(fmt.Sprint(side*side - 1))
	rows := make([][]string, side)
	for y := range rows {
		rows[y] = make([]string, side)
	}
	for i := 0; i < side*side; i++ {
		x, y := c.XY(i, side)
		rows[y][x] = fmt.Sprintf("%*d", width, i)
	}
	var b strings.Builder
	for y := side - 1; y >= 0; y-- {
		b.WriteString(strings.Join(rows[y], " "))
		b.WriteByte('\n')
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
