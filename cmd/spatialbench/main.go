// Command spatialbench regenerates the reproduction experiments E1-E12
// (one per quantitative claim of "Low-Depth Spatial Tree Algorithms",
// IPDPS 2024; see DESIGN.md for the index and EXPERIMENTS.md for the
// recorded paper-vs-measured results).
//
// Usage:
//
//	spatialbench -list                 # show the experiment index
//	spatialbench                       # run everything (full sizes)
//	spatialbench -exp E3,E9 -seed 7    # selected experiments
//	spatialbench -quick                # reduced sizes (CI smoke)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"spatialtree/internal/experiments"
)

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		seed     = flag.Uint64("seed", 42, "random seed for workloads and Las Vegas coins")
		quick    = flag.Bool("quick", false, "reduced input sizes")
		list     = flag.Bool("list", false, "list experiments and exit")
		sizesStr = flag.String("sizes", "", "comma-separated vertex counts overriding the default sweep")
		csv      = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	if *sizesStr != "" {
		for _, s := range strings.Split(*sizesStr, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "spatialbench: bad size %q\n", s)
				os.Exit(2)
			}
			cfg.Sizes = append(cfg.Sizes, n)
		}
	}

	selected := experiments.All()
	if *expFlag != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "spatialbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		if *csv {
			for _, tb := range e.Run(cfg) {
				fmt.Println(tb.CSV())
			}
			continue
		}
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("paper claim: %s\n\n", e.Claim)
		for _, tb := range e.Run(cfg) {
			fmt.Println(tb.String())
		}
		fmt.Printf("(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
