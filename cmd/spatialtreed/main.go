// Command spatialtreed is the network serving daemon: it exposes the
// batched query engines over HTTP/JSON (see internal/server) with an
// adaptive batch scheduler per shard — requests are enqueued on
// arrival and dispatched to shared simulator runs when a shard
// accumulates -max-batch requests or its oldest request has waited
// -max-delay, whichever comes first. Admission is a bounded queue
// (-queue) that answers 429 under pressure; SIGINT/SIGTERM triggers a
// graceful drain that resolves every in-flight request before exit.
//
// With -tcp-addr the same daemon also serves the length-prefixed
// binary protocol (internal/wire, docs/protocol.md) on raw TCP:
// identical shard routing, admission and drain semantics, shared
// batches with HTTP traffic, far less per-request overhead. The
// StatusTooMany/StatusUnavailable wire statuses are the binary
// counterparts of HTTP 429/503.
//
// Endpoints (all JSON; see internal/server for the wire types):
//
//	POST /v1/trees            register a tree {parents} → {tree_id}
//	POST /v1/query            {tree_id|parents, kind, ...} → result
//	POST /v1/dyn              create a mutable shard → {shard_id}
//	GET  /v1/dyn/{id}         shard layout config + tuner state
//	POST /v1/dyn/{id}/mutate  {op: insert|delete, parent|leaf}
//	POST /v1/dyn/{id}/query   query the shard's current tree
//	GET  /metrics             scheduler + engine + cache counters
//	GET  /healthz             liveness (503 while draining)
//
// Usage:
//
//	spatialtreed                              # serve on :8372, in-memory only
//	spatialtreed -addr :9000 -max-batch 32 -max-delay 5ms
//	spatialtreed -preload 4 -preload-n 4096   # seed a 4-tree forest, ids logged
//	spatialtreed -data-dir /var/lib/spatialtree  # durable shards + warm restart
//	spatialtreed -backend sim                 # meter every batch on the simulator
//	spatialtreed -shadow-meter 16             # native serving, 1-in-16 sim sampling
//	spatialtreed -backend sim -tune           # self-tuning shard layouts
//
// With -tune, an online tuner (internal/tune) profiles every mutable
// shard's workload and periodically scores candidate layouts — curve ×
// rebuild threshold ε — against the shard's own sampled cost,
// republishing the winner through the shard's epoch machinery when the
// projected win beats -tune-threshold; a republish whose measured win
// misses its projection backs the shard off geometrically, so layouts
// converge instead of thrashing. GET /v1/dyn/{id} and the /metrics
// tuner block expose per-shard and aggregate tuner state.
//
// Serving runs on the native goroutine-parallel backend by default;
// -backend sim routes every batch through the spatial-computer
// simulator (exact model Energy/Depth in /metrics, at simulator speed),
// and -shadow-meter N keeps native serving while sampling one batch in
// N through a shadow sim run for metering and cross-validation.
// Register/create requests may override the backend per shard.
//
// With -data-dir, registered trees and mutable shards survive restarts:
// trees persist as placement snapshots (recovered without re-running
// the layout pipeline), dyn shards as a snapshot plus a mutation WAL
// replayed on boot. -fsync picks the WAL durability/latency trade-off
// and -compact-after bounds replay work; see docs/persistence.md.
//
// With -peers (plus -advertise and -tcp-addr) the daemon joins a static
// cluster: mutable shards are owned by consistent hash of their tree
// fingerprint across the peer list, non-owners proxy (or, with
// -redirect, answer 421 with the owner's address), and each owner ships
// its shards' snapshots and WAL records to -replicas followers, acking
// mutations only after the followers confirmed. Followed replicas
// persist under <data-dir>/replicas. See docs/cluster.md.
//
//	spatialtreed -tcp-addr :9372 -advertise host1:9372 \
//	    -peers host1:9372,host2:9372,host3:9372 -replicas 1
//
// A quick smoke from a shell:
//
//	curl -s localhost:8372/healthz
//	curl -s -X POST localhost:8372/v1/trees -d '{"parents":[-1,0,0,1]}'
//	curl -s -X POST localhost:8372/v1/query \
//	    -d '{"parents":[-1,0,0,1],"kind":"lca","queries":[{"u":2,"v":3}]}'
//	curl -s localhost:8372/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"spatialtree/internal/cluster"
	"spatialtree/internal/exec"
	"spatialtree/internal/persist"
	"spatialtree/internal/rng"
	"spatialtree/internal/server"
	"spatialtree/internal/tree"
	"spatialtree/internal/tune"
)

func main() {
	var (
		addr     = flag.String("addr", ":8372", "HTTP listen address")
		tcpAddr  = flag.String("tcp-addr", "", "binary-protocol TCP listen address ('' = HTTP only); see docs/protocol.md")
		readHdr  = flag.Duration("read-header-timeout", 10*time.Second, "HTTP request-header read budget (slow-loris guard)")
		idleTO   = flag.Duration("idle-timeout", server.DefaultTCPIdleTimeout, "per-connection idle budget (HTTP keep-alive and binary-protocol frame gap)")
		maxBatch = flag.Int("max-batch", server.DefaultMaxBatch, "scheduler size trigger: flush a shard at this many pending requests")
		maxDelay = flag.Duration("max-delay", server.DefaultMaxDelay, "scheduler deadline trigger: flush a shard once its oldest request waited this long")
		queue    = flag.Int("queue", server.DefaultQueueLimit, "admission limit: concurrent requests beyond this get 429")
		shards   = flag.Int("max-shards", server.DefaultMaxShards, "retained per-tree serving state bound; registrations beyond it get 429")
		workers  = flag.Int("workers", 0, "parallel shard flush workers (0 = GOMAXPROCS)")
		curve    = flag.String("curve", "hilbert", "space-filling curve for placements")
		seed     = flag.Uint64("seed", 1, "simulator seed")
		cacheCap = flag.Int("cache-cap", server.DefaultCacheCapacity, "layout cache capacity (placements)")
		epsilon  = flag.Float64("epsilon", 0.2, "default drift budget of mutable shards")
		backend  = flag.String("backend", "native", "default execution backend: native (goroutine-parallel serving) or sim (spatial-computer simulator with exact model-cost metering); register/create requests may override per shard")
		shadow   = flag.Int("shadow-meter", 0, "with -backend native, sample 1 in N batches through a shadow sim run so /metrics keeps (sampled) model energy/depth and validates results (0 = off)")
		preload  = flag.Int("preload", 0, "register this many random trees at startup (ids logged)")
		preN     = flag.Int("preload-n", 4096, "vertices per preloaded tree")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on shutdown")
		dataDir  = flag.String("data-dir", "", "durable storage directory; registered trees and dyn shards survive restarts ('' = in-memory only)")
		fsyncPol = flag.String("fsync", "always", "WAL fsync policy: always (fsync per mutation) or off (OS page cache)")
		compact  = flag.Int("compact-after", persist.DefaultCompactAfter, "WAL records per dyn shard before compaction into a fresh snapshot")
		peers    = flag.String("peers", "", "comma-separated advertise addresses of every cluster member ('' = single node); requires -tcp-addr and -advertise")
		adv      = flag.String("advertise", "", "this node's advertise address (must appear in -peers); peers dial it for proxying and replication")
		replicas = flag.Int("replicas", server.DefaultReplicas, "follower copies per dyn shard beyond its owner (cluster mode; capped at peers-1)")
		vnodes   = flag.Int("vnodes", server.DefaultVirtualNodes, "consistent-hash virtual nodes per peer (cluster mode)")
		redirect = flag.Bool("redirect", false, "answer non-owned shard requests with a redirect (HTTP 421 / wire status) carrying the owner address, instead of proxying")
		tuneOn   = flag.Bool("tune", false, "enable the online per-shard layout tuner: profile each mutable shard's workload and republish its curve/epsilon (via the epoch machinery) when a candidate layout projects a win past -tune-threshold")
		tuneInt  = flag.Duration("tune-interval", tune.DefaultInterval, "tuner tick period (with -tune)")
		tuneThr  = flag.Float64("tune-threshold", tune.DefaultThreshold, "tuner hysteresis: minimum projected fractional win before a shard's layout is republished (with -tune)")
	)
	flag.Parse()

	if !exec.Valid(*backend) {
		log.Fatalf("spatialtreed: -backend must be one of %v, got %q", exec.Names(), *backend)
	}

	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if *tcpAddr == "" {
			log.Fatalf("spatialtreed: -peers requires -tcp-addr (replication and proxying ride the binary protocol)")
		}
		if *adv == "" {
			log.Fatalf("spatialtreed: -peers requires -advertise (this node's address within the peer list)")
		}
	}

	var store *persist.Store
	if *dataDir != "" {
		var doSync bool
		switch *fsyncPol {
		case "always":
			doSync = true
		case "off":
		default:
			log.Fatalf("spatialtreed: -fsync must be always or off, got %q", *fsyncPol)
		}
		var err error
		store, err = persist.Open(persist.Options{Dir: *dataDir, Fsync: doSync, CompactAfter: *compact})
		if err != nil {
			log.Fatalf("spatialtreed: %v", err)
		}
	}

	srv := server.New(server.Config{
		Scheduler: server.Scheduler{
			MaxBatch: *maxBatch,
			MaxDelay: *maxDelay,
			Workers:  *workers,
		},
		Limits: server.Limits{
			QueueLimit:    *queue,
			MaxShards:     *shards,
			CacheCapacity: *cacheCap,
		},
		Timeouts: server.Timeouts{
			TCPIdle: *idleTO,
		},
		Durability: server.Durability{
			Store: store,
		},
		Cluster: server.Cluster{
			Self:         *adv,
			Peers:        peerList,
			Replicas:     *replicas,
			VirtualNodes: *vnodes,
			Redirect:     *redirect,
		},
		Tuning: server.Tuning{
			Enabled:   *tuneOn,
			Interval:  *tuneInt,
			Threshold: *tuneThr,
		},
		Curve:       *curve,
		Seed:        *seed,
		Epsilon:     *epsilon,
		Backend:     *backend,
		ShadowMeter: *shadow,
	})
	if store != nil {
		rs, err := srv.Recover()
		if err != nil {
			log.Fatalf("spatialtreed: recovery: %v", err)
		}
		log.Printf("recovered %d trees and %d dyn shards (%d WAL records replayed) from %s",
			rs.Trees, rs.DynShards, rs.Records, store.Dir())
	}
	var node *cluster.Node
	if len(peerList) > 0 {
		opts := cluster.Options{}
		if *dataDir != "" {
			opts.ReplicaDir = filepath.Join(*dataDir, "replicas")
		}
		var err error
		node, err = cluster.New(srv, opts) // installs itself via srv.SetCluster
		if err != nil {
			log.Fatalf("spatialtreed: %v", err)
		}
		log.Printf("cluster member %s of %v (replicas=%d vnodes=%d redirect=%v)",
			*adv, peerList, *replicas, *vnodes, *redirect)
	}
	for i := 0; i < *preload; i++ {
		t := tree.RandomAttachment(*preN, rng.New(*seed+uint64(i)))
		id, err := srv.RegisterTree(t)
		if err != nil {
			log.Fatalf("spatialtreed: preload tree %d: %v", i, err)
		}
		log.Printf("preloaded tree %d: id=%s n=%d", i, id, t.N())
	}

	// Slow-loris defence: a client must deliver its headers within
	// -read-header-timeout, finish its body within ReadTimeout, and a
	// keep-alive connection idles out after -idle-timeout. The binary
	// listener gets the equivalent guarantees from per-connection
	// deadlines inside ServeBinary (Config.TCPIdleTimeout covers each
	// whole frame read, so trickled frames cannot hold a connection).
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHdr,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       *idleTO,
	}
	errc := make(chan error, 2)
	go func() { errc <- hs.ListenAndServe() }()
	var tcpLn net.Listener
	if *tcpAddr != "" {
		var err error
		tcpLn, err = net.Listen("tcp", *tcpAddr)
		if err != nil {
			log.Fatalf("spatialtreed: %v", err)
		}
		go func() {
			if err := srv.ServeBinary(tcpLn); !errors.Is(err, net.ErrClosed) {
				errc <- err
			}
		}()
		log.Printf("spatialtreed binary protocol on %s", tcpLn.Addr())
	}
	log.Printf("spatialtreed listening on %s (backend=%s max-batch=%d max-delay=%v queue=%d curve=%s)",
		*addr, *backend, *maxBatch, *maxDelay, *queue, *curve)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("spatialtreed: %v", err)
	case <-ctx.Done():
	}

	log.Printf("spatialtreed draining (budget %v)...", *drainFor)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	// Drain first — new requests bounce with 503 while in-flight ones
	// resolve through the scheduler — then close the listener.
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("spatialtreed: %v", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("spatialtreed: shutdown: %v", err)
	}
	// Both protocols share the drain above: binary connections answer
	// StatusUnavailable the moment Drain flips the flag, so closing the
	// listener and remaining connections here loses no admitted work.
	if tcpLn != nil {
		srv.CloseBinary()
	}
	// Cluster teardown after the drain: acked mutations finished their
	// follower round-trips before Drain returned.
	if node != nil {
		if err := node.Close(); err != nil {
			log.Printf("spatialtreed: closing cluster: %v", err)
		}
	}
	// Close the store after the drain: every admitted mutation has
	// journaled by now, so this final sync makes the whole session
	// durable even under -fsync=off.
	if store != nil {
		if err := store.Close(); err != nil {
			log.Printf("spatialtreed: closing store: %v", err)
		}
	}
	m := srv.Metrics()
	fmt.Printf("served: requests=%d batches=%d (%.1f req/batch) size-flushes=%d deadline-flushes=%d rejected=%d\n",
		m.Scheduler.Requests, m.Scheduler.Batches, m.Scheduler.RequestsPerBatch,
		m.Scheduler.SizeFlushes, m.Scheduler.DeadlineFlushes, m.Server.Rejected)
}
