package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"spatialtree/internal/rng"
	"spatialtree/internal/server"
	"spatialtree/internal/tree"
)

// TestDaemonEndToEnd exercises the daemon's serving shape over a real
// TCP listener: the same server wiring main uses, 64+ concurrent
// clients against a preloaded forest, scheduler coalescing visible in
// /metrics, then the signal path's drain + shutdown sequence.
func TestDaemonEndToEnd(t *testing.T) {
	srv := server.New(server.Config{MaxBatch: 16, MaxDelay: 40 * time.Millisecond})

	// Preload a seeded forest the way -preload does.
	const forest = 3
	ids := make([]string, forest)
	for i := range ids {
		tr := tree.RandomAttachment(512, rng.New(uint64(i)+1))
		id, err := srv.RegisterTree(tr)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	const clients = 64
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body, _ := json.Marshal(server.QueryRequest{
				TreeID:  ids[c%forest],
				Kind:    "lca",
				Queries: []server.LCAQuery{{U: c, V: 511 - c}},
			})
			r, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[c] = err
				return
			}
			defer r.Body.Close()
			if r.StatusCode != http.StatusOK {
				errs[c] = fmt.Errorf("client %d: status %d", c, r.StatusCode)
				return
			}
			var q server.QueryResponse
			if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
				errs[c] = err
				return
			}
			if len(q.Answers) != 1 {
				errs[c] = fmt.Errorf("client %d: %d answers", c, len(q.Answers))
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m server.MetricsResponse
	if err := json.NewDecoder(mr.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if m.Scheduler.Requests < clients {
		t.Fatalf("requests = %d, want >= %d", m.Scheduler.Requests, clients)
	}
	if m.Scheduler.Batches >= m.Scheduler.Requests {
		t.Fatalf("batches = %d for %d requests: no coalescing over TCP", m.Scheduler.Batches, m.Scheduler.Requests)
	}

	// The shutdown sequence main runs on SIGTERM.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
