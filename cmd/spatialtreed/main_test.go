package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"spatialtree/internal/persist"
	"spatialtree/internal/rng"
	"spatialtree/internal/server"
	"spatialtree/internal/tree"
	"spatialtree/internal/wire"
)

// TestDaemonEndToEnd exercises the daemon's serving shape over real
// TCP listeners: the same dual-protocol wiring main uses (HTTP/JSON
// plus the binary wire protocol), 64+ concurrent clients against a
// preloaded forest, scheduler coalescing visible in /metrics, then the
// signal path's drain + shutdown sequence with both listeners.
func TestDaemonEndToEnd(t *testing.T) {
	srv := server.New(server.Config{Scheduler: server.Scheduler{MaxBatch: 16, MaxDelay: 40 * time.Millisecond}})

	// Preload a seeded forest the way -preload does.
	const forest = 3
	ids := make([]string, forest)
	for i := range ids {
		tr := tree.RandomAttachment(512, rng.New(uint64(i)+1))
		id, err := srv.RegisterTree(tr)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// The binary-protocol listener main starts under -tcp-addr.
	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeBinary(wln)
	wcl, err := wire.Dial(wln.Addr().String(), wire.DialOptions{DialTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer wcl.Close()

	const clients = 64
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body, _ := json.Marshal(server.QueryRequest{
				TreeID:  ids[c%forest],
				Kind:    "lca",
				Queries: []server.LCAQuery{{U: c, V: 511 - c}},
			})
			r, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[c] = err
				return
			}
			defer r.Body.Close()
			if r.StatusCode != http.StatusOK {
				errs[c] = fmt.Errorf("client %d: status %d", c, r.StatusCode)
				return
			}
			var q server.QueryResponse
			if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
				errs[c] = err
				return
			}
			if len(q.Answers) != 1 {
				errs[c] = fmt.Errorf("client %d: %d answers", c, len(q.Answers))
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The same shard answers over the binary protocol, identically.
	wres, err := wcl.Do(&wire.Query{
		Kind: wire.KindLCA, TreeID: ids[0],
		Queries: []wire.LCAQuery{{U: 0, V: 511}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wres.Answers) != 1 {
		t.Fatalf("binary answers = %v, want 1", wres.Answers)
	}

	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m server.MetricsResponse
	if err := json.NewDecoder(mr.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if m.Scheduler.Requests < clients {
		t.Fatalf("requests = %d, want >= %d", m.Scheduler.Requests, clients)
	}
	if m.Scheduler.Batches >= m.Scheduler.Requests {
		t.Fatalf("batches = %d for %d requests: no coalescing over TCP", m.Scheduler.Batches, m.Scheduler.Requests)
	}
	if m.Wire == nil || m.Wire.Queries == 0 {
		t.Fatalf("wire metrics = %+v, want the binary query counted", m.Wire)
	}

	// The shutdown sequence main runs on SIGTERM: drain (both protocols
	// refuse new work), HTTP shutdown, then the binary listener closes.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := wcl.Do(&wire.Query{Kind: wire.KindLCA, TreeID: ids[0],
		Queries: []wire.LCAQuery{{U: 0, V: 1}}}); err == nil {
		t.Fatal("binary query served after drain, want StatusUnavailable")
	}
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	srv.CloseBinary()
}

// TestDaemonRestartDurability drives the -data-dir path the way two
// consecutive daemon processes would: serve over TCP with a store,
// register + mutate, run the SIGTERM sequence (drain, shutdown, store
// close), then boot a second server on the same directory and verify
// the whole shard table — ids, counts, query answers — survived.
func TestDaemonRestartDurability(t *testing.T) {
	dir := t.TempDir()
	store, err := persist.Open(persist.Options{Dir: dir, Fsync: false})
	if err != nil {
		t.Fatal(err)
	}

	boot := func(st *persist.Store) (*server.Server, *http.Server, string) {
		srv := server.New(server.Config{Scheduler: server.Scheduler{MaxBatch: 8, MaxDelay: time.Millisecond}, Durability: server.Durability{Store: st}})
		if _, err := srv.Recover(); err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		return srv, hs, "http://" + ln.Addr().String()
	}
	stop := func(srv *server.Server, hs *http.Server, st *persist.Store) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	post := func(base, path string, body, out any) {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
	}

	srv1, hs1, base1 := boot(store)
	tr := tree.RandomAttachment(256, rng.New(7))
	var reg server.RegisterResponse
	post(base1, "/v1/trees", server.RegisterRequest{Parents: tr.Parents()}, &reg)
	var dyn server.DynCreateResponse
	post(base1, "/v1/dyn", server.DynCreateRequest{Parents: tree.RandomAttachment(64, rng.New(8)).Parents()}, &dyn)
	for i := 0; i < 20; i++ {
		post(base1, "/v1/dyn/"+dyn.ID+"/mutate", server.MutateRequest{Op: "insert", Parent: i % 64}, nil)
	}
	q := server.QueryRequest{Kind: "lca", Queries: []server.LCAQuery{{U: 5, V: 77}}}
	var before server.QueryResponse
	post(base1, "/v1/dyn/"+dyn.ID+"/query", q, &before)
	stop(srv1, hs1, store)

	store2, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv2, hs2, base2 := boot(store2)
	defer stop(srv2, hs2, store2)

	var regAgain server.RegisterResponse
	post(base2, "/v1/trees", server.RegisterRequest{Parents: tr.Parents()}, &regAgain)
	if regAgain.ID != reg.ID {
		t.Fatalf("tree id changed across restart: %s vs %s", regAgain.ID, reg.ID)
	}
	var after server.QueryResponse
	post(base2, "/v1/dyn/"+dyn.ID+"/query", q, &after)
	if len(after.Answers) != 1 || after.Answers[0] != before.Answers[0] {
		t.Fatalf("dyn answers changed across restart: %v vs %v", after.Answers, before.Answers)
	}
}
