// Command spatialvet runs the repo's custom invariant analyzers (see
// internal/analysis and docs/analysis.md) over the module:
//
//	go run ./cmd/spatialvet ./...
//
// It prints one line per finding and exits non-zero if any survive
// their //spatialvet:ignore review — CI runs it as a hard gate in the
// lint job.
package main

import (
	"fmt"
	"os"

	"spatialtree/internal/analysis"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatialvet:", err)
		os.Exit(2)
	}
	diags, err := prog.Run(analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatialvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s\n", prog.Fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "spatialvet: %d finding(s) in %d package(s)\n",
			len(diags), prog.Vetted())
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "spatialvet: %d package(s) clean (%d analyzers)\n",
		prog.Vetted(), len(analysis.All()))
}
