// Command benchgate is the CI benchmark-regression gate: it runs the
// serving benchmarks (E13 engine throughput, E14 dyn churn, E15
// recovery, E16 native-vs-sim backends, E17 wire throughput, E18
// self-tuning) several times, emits a machine-readable artifact
// (BENCH_10.json — see docs/bench.md for the schema), and fails when
// wall-clock ns/op regresses beyond a tolerance against a checked-in
// baseline.
//
// The gate compares the MINIMUM ns/op across -count runs: the minimum
// is the least noisy estimator of a benchmark's true cost on a shared
// machine (noise only ever adds time), so a 25% regression of the
// minimum is a real slowdown, not scheduler jitter.
//
// Usage:
//
//	benchgate                                  # run, write BENCH_10.json, gate
//	benchgate -count 5 -tolerance 0.25
//	benchgate -write-baseline                  # refresh testdata/bench_baseline.json
//
// Exit status: 0 when every baselined benchmark is within tolerance,
// 1 on regression or a benchmark missing from the run.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// Doc is the artifact schema (docs/bench.md).
type Doc struct {
	// Schema identifies the document format.
	Schema string `json:"schema"`
	// Go is the toolchain that produced the numbers.
	Go string `json:"go"`
	// Count is how many times each benchmark ran; Ns/Allocs are minima
	// across those runs.
	Count      int     `json:"count"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one benchmark's aggregated result.
type Bench struct {
	// Op is the benchmark name with the GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkE13EngineThroughput/engine-batched".
	Op string `json:"op"`
	// Ns is the minimum wall-clock ns/op observed.
	Ns float64 `json:"ns_per_op"`
	// Allocs is the minimum allocations per op observed.
	Allocs int64 `json:"allocs_per_op"`
	// Runs is how many parsed lines contributed.
	Runs int `json:"runs"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)
	allocsRE  = regexp.MustCompile(`\s([0-9]+) allocs/op`)
)

func main() {
	var (
		benchRE   = flag.String("bench", "E13EngineThroughput|E14DynChurn|E15Recovery|E16NativeBackend|E17WireThroughput|E18SelfTune", "benchmark regexp passed to go test -bench")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		count     = flag.Int("count", 5, "runs per benchmark (minimum is kept)")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime")
		out       = flag.String("out", "BENCH_10.json", "artifact path ('' = skip)")
		baseline  = flag.String("baseline", "testdata/bench_baseline.json", "checked-in baseline path")
		tolerance = flag.Float64("tolerance", 0.25, "allowed ns/op regression fraction over baseline")
		calibrate = flag.String("calibrate", "", "benchmark op whose measured/baseline ratio rescales the whole baseline to this machine's speed before gating ('' = gate absolute ns/op)")
		writeBase = flag.Bool("write-baseline", false, "write the baseline instead of gating against it")
	)
	flag.Parse()

	raw, err := runBenchmarks(*pkg, *benchRE, *benchtime, *count)
	if err != nil {
		fatal(err)
	}
	doc, err := parse(raw, *count)
	if err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines matched -bench %q", *benchRE))
	}

	if *writeBase {
		if err := writeDoc(*baseline, doc); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote baseline %s (%d benchmarks)\n", *baseline, len(doc.Benchmarks))
		return
	}
	if *out != "" {
		if err := writeDoc(*out, doc); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", *out, len(doc.Benchmarks))
	}

	base, err := readDoc(*baseline)
	if err != nil {
		fatal(fmt.Errorf("baseline: %w (run benchgate -write-baseline to create it)", err))
	}
	if failed := gate(os.Stdout, base, doc, *tolerance, *calibrate); failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}

// runBenchmarks shells out to go test, teeing its output to stderr so
// CI logs keep the raw numbers.
func runBenchmarks(pkg, benchRE, benchtime string, count int) ([]byte, error) {
	args := []string{
		"test", "-run", "^$",
		"-bench", benchRE,
		"-benchtime", benchtime,
		"-count", strconv.Itoa(count),
		"-benchmem",
		pkg,
	}
	fmt.Fprintln(os.Stderr, "benchgate: go", args)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(buf.Bytes())
		return nil, fmt.Errorf("go test: %w", err)
	}
	os.Stderr.Write(buf.Bytes())
	return buf.Bytes(), nil
}

// parse folds go test -bench output into per-benchmark minima.
func parse(raw []byte, count int) (Doc, error) {
	type agg struct {
		ns     float64
		allocs int64
		runs   int
	}
	byOp := map[string]*agg{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return Doc{}, fmt.Errorf("parsing %q: %w", sc.Text(), err)
		}
		var allocs int64
		if am := allocsRE.FindStringSubmatch(m[3]); am != nil {
			allocs, _ = strconv.ParseInt(am[1], 10, 64)
		}
		a, ok := byOp[m[1]]
		if !ok {
			a = &agg{ns: ns, allocs: allocs}
			byOp[m[1]] = a
		}
		if ns < a.ns {
			a.ns = ns
		}
		if allocs < a.allocs {
			a.allocs = allocs
		}
		a.runs++
	}
	if err := sc.Err(); err != nil {
		return Doc{}, err
	}
	doc := Doc{Schema: "spatialtree-bench/v1", Go: runtime.Version(), Count: count}
	for op, a := range byOp {
		doc.Benchmarks = append(doc.Benchmarks, Bench{Op: op, Ns: a.ns, Allocs: a.allocs, Runs: a.runs})
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool { return doc.Benchmarks[i].Op < doc.Benchmarks[j].Op })
	return doc, nil
}

// gate compares measured against base and reports per-benchmark
// verdicts; it returns true when any baselined benchmark regressed
// beyond tol or is missing from the run.
//
// A non-empty calibrateOp makes the gate hardware-independent: the
// whole baseline is first rescaled by that benchmark's
// measured/baseline ratio, so a uniformly slower (or faster) machine
// cancels out and only cost relative to the calibration anchor is
// gated. Pick an anchor whose own cost is frozen — CI uses the naive
// per-call arm, which exercises the same kernels and hardware but none
// of the serving-path code a PR is likely to regress. The anchor
// itself trivially gates at ±0%.
func gate(w *os.File, base, measured Doc, tol float64, calibrateOp string) (failed bool) {
	got := map[string]Bench{}
	for _, b := range measured.Benchmarks {
		got[b.Op] = b
	}
	baseOps := map[string]bool{}
	for _, b := range base.Benchmarks {
		baseOps[b.Op] = true
	}
	scale := 1.0
	if calibrateOp != "" {
		m, okM := got[calibrateOp]
		var cb Bench
		okB := false
		for _, b := range base.Benchmarks {
			if b.Op == calibrateOp {
				cb, okB = b, true
				break
			}
		}
		if !okM || !okB {
			where := "this run"
			if okM { // measured fine, so the baseline is the side missing it
				where = "the baseline"
			}
			fmt.Fprintf(w, "FAIL calibration op %q missing from %s\n", calibrateOp, where)
			return true
		}
		scale = m.Ns / cb.Ns
		fmt.Fprintf(w, "calibration: %s ran at %.2fx the baseline machine; baseline rescaled\n", calibrateOp, scale)
	}
	for _, b := range base.Benchmarks {
		m, ok := got[b.Op]
		if !ok {
			fmt.Fprintf(w, "FAIL %-55s missing from this run\n", b.Op)
			failed = true
			continue
		}
		ratio := m.Ns / (b.Ns * scale)
		verdict := "ok  "
		if ratio > 1+tol {
			verdict = "FAIL"
			failed = true
		}
		fmt.Fprintf(w, "%s %-55s %12.0f ns/op vs baseline %12.0f (%+.1f%%, gate +%.0f%%)\n",
			verdict, b.Op, m.Ns, b.Ns*scale, 100*(ratio-1), 100*tol)
	}
	for _, b := range measured.Benchmarks {
		if !baseOps[b.Op] {
			fmt.Fprintf(w, "note %-55s not in baseline (no gate)\n", b.Op)
		}
	}
	if failed {
		fmt.Fprintln(w, "benchgate: ns/op regression beyond tolerance")
	}
	return failed
}

func readDoc(path string) (Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Doc{}, err
	}
	var d Doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return Doc{}, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

func writeDoc(path string, d Doc) error {
	raw, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
