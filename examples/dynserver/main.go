// Dynserver: serve a tree that changes while it is being queried — the
// paper's §VII future-work direction wired into the batched engine.
// A DynEngine owns a dynamically maintained layout; leaf inserts and
// deletes land between batches in O(1) parked moves (amortized rebuilds
// every εn mutations), instead of the from-scratch light-first rebuild
// a static engine would need per mutation. Each mutation bumps the
// placement epoch, which is folded into the layout-cache key, so a
// stale placement can never serve a mutated tree.
package main

import (
	"fmt"

	spatialtree "spatialtree"
)

func main() {
	const n = 1 << 12
	t := spatialtree.RandomTree(n, 7)

	cache := spatialtree.NewLayoutCache(8)
	eng, err := spatialtree.NewDynEngine(t, spatialtree.DynEngineOptions{
		Options: spatialtree.EngineOptions{Curve: "hilbert", Window: 16, Cache: cache},
		Epsilon: 0.2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("dyn engine: n=%d epoch=%d\n", eng.N(), eng.Epoch())

	// Query the initial tree.
	ones := make([]int64, eng.N())
	for i := range ones {
		ones[i] = 1
	}
	if res := eng.SubmitTreefix(ones, spatialtree.OpAdd).Wait(); res.Err != nil {
		panic(res.Err)
	} else {
		fmt.Printf("epoch %d: root subtree sum = %d\n", eng.Epoch(), res.Sums[t.Root()])
	}

	// Mutate while serving: grow a fresh branch, prune part of it, and
	// query between bursts. Futures submitted before a mutation resolve
	// against the tree they were submitted to.
	branch := make([]int, 0, 64)
	parent := 0
	for i := 0; i < 64; i++ {
		v, err := eng.InsertLeaf(parent)
		if err != nil {
			panic(err)
		}
		branch = append(branch, v)
		parent = v // chain: each new leaf hangs off the previous one
	}
	queries := []spatialtree.Query{
		{U: branch[0], V: branch[len(branch)-1]}, // along the new chain
		{U: branch[len(branch)/2], V: 0},
	}
	if res := eng.SubmitLCA(queries).Wait(); res.Err != nil {
		panic(res.Err)
	} else {
		fmt.Printf("epoch %d: lca(chain head, chain tail) = %d, lca(mid, root) = %d\n",
			eng.Epoch(), res.Answers[0], res.Answers[1])
	}

	// Prune the tip of the chain leaf by leaf (only leaves can go).
	for i := 0; i < 32; i++ {
		tip := branch[len(branch)-1]
		if _, err := eng.DeleteLeaf(tip); err != nil {
			panic(err)
		}
		branch = branch[:len(branch)-1]
	}
	ones = make([]int64, eng.N())
	for i := range ones {
		ones[i] = 1
	}
	if res := eng.SubmitTreefix(ones, spatialtree.OpAdd).Wait(); res.Err != nil {
		panic(res.Err)
	} else {
		cur, err := eng.Tree()
		if err != nil {
			panic(err)
		}
		fmt.Printf("epoch %d: n=%d root subtree sum = %d\n", eng.Epoch(), eng.N(), res.Sums[cur.Root()])
	}

	st := eng.Stats()
	fmt.Printf("mutations: %d inserts, %d deletes in %d epochs\n", st.Inserts, st.Deletes, st.Epoch)
	fmt.Printf("maintenance: %d serving refreshes, %d full layout rebuilds, park-energy=%d migrate-energy=%d\n",
		st.Refreshes, st.Rebuilds, st.ParkEnergy, st.MigrateEnergy)
	fmt.Printf("serving: %d requests in %d batches; cache %d entries (stale epochs invalidated)\n",
		st.Engine.Requests, st.Engine.Batches, cache.Len())
}
