// Minimum cut: the application the paper motivates its kernels with
// (Karger's minimum-cut algorithm reduces to cuts that respect a
// spanning tree; treefix sums and batched LCA are exactly its
// subroutines). We build a weighted graph with a planted bridge, take a
// spanning tree, and compute all 1-respecting cut weights on the spatial
// computer — one batched-LCA run plus two treefix runs.
package main

import (
	"fmt"

	"spatialtree/internal/machine"
	"spatialtree/internal/mincut"
	"spatialtree/internal/order"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

func main() {
	const half = 4096
	r := rng.New(2024)

	// Two dense random clusters joined by a single light bridge.
	// Spanning tree: random tree inside each cluster, bridged at vertex 0
	// of each half.
	parent := make([]int, 2*half)
	parent[0] = -1
	for v := 1; v < half; v++ {
		parent[v] = r.Intn(v)
	}
	parent[half] = 0 // the bridge
	for v := half + 1; v < 2*half; v++ {
		parent[v] = half + r.Intn(v-half)
	}
	t := tree.MustFromParents(parent)

	var edges []mincut.Edge
	for v := 1; v < 2*half; v++ {
		w := int64(5 + r.Intn(20))
		if v == half {
			w = 1 // the planted bridge is light
		}
		edges = append(edges, mincut.Edge{U: parent[v], V: v, W: w})
	}
	// Intra-cluster chords make everything except the bridge expensive
	// to cut.
	for i := 0; i < 4*half; i++ {
		a, b := r.Intn(half), r.Intn(half)
		if a != b {
			edges = append(edges, mincut.Edge{U: a, V: b, W: int64(5 + r.Intn(20))})
		}
		a, b = half+r.Intn(half), half+r.Intn(half)
		if a != b {
			edges = append(edges, mincut.Edge{U: a, V: b, W: int64(5 + r.Intn(20))})
		}
	}
	fmt.Printf("graph: %d vertices, %d weighted edges, planted bridge %d-%d (w=1)\n",
		t.N(), len(edges), 0, half)

	rank := order.LightFirst(t).Rank
	s := machine.New(t.N(), sfc.Hilbert{})
	res, err := mincut.OneRespecting(s, t, rank, edges, r)
	if err != nil {
		panic(err)
	}
	fmt.Printf("1-respecting minimum cut: weight=%d at parent edge of vertex %d\n",
		res.MinWeight, res.ArgVertex)
	if res.ArgVertex != half || res.MinWeight != 1 {
		panic("did not recover the planted bridge")
	}
	fmt.Printf("spatial cost: energy=%d (%.1f/vertex) depth=%d, LCA layers=%d\n",
		s.Energy(), float64(s.Energy())/float64(t.N()), s.Depth(), res.LCAStats.Layers)

	// Cross-check on a small random instance against the brute-force
	// oracle.
	small := tree.RandomAttachment(200, r)
	smallEdges := mincut.RandomGraph(small, 300, 9, r)
	s2 := machine.New(small.N(), sfc.Hilbert{})
	got, err := mincut.OneRespecting(s2, small, order.LightFirst(small).Rank, smallEdges, r)
	if err != nil {
		panic(err)
	}
	want := mincut.OneRespectingSequential(small, smallEdges)
	if got.MinWeight != want.MinWeight {
		panic("oracle mismatch")
	}
	fmt.Printf("oracle cross-check (n=200, m=%d): min cut %d == brute force %d ✓\n",
		len(smallEdges), got.MinWeight, want.MinWeight)
}
