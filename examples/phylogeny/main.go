// Phylogeny: the computational-biology workload from the paper's
// introduction. We grow a Yule-process phylogenetic tree over a set of
// taxa, lay it out on the grid, and run the two batched analyses the
// paper's kernels support:
//
//   - clade sizes (how many extant taxa descend from every ancestral
//     split) via a bottom-up treefix sum, and
//   - most-recent-common-ancestor queries for sampled taxon pairs via
//     batched LCA,
//
// reporting the spatial-model cost of each step and the layout's effect.
package main

import (
	"fmt"

	spatialtree "spatialtree"
)

func main() {
	const taxa = 8192
	t := spatialtree.PhylogeneticTree(taxa, 2024)
	fmt.Printf("phylogeny: %d taxa, %d tree nodes, height %d\n", taxa, t.N(), t.Height())

	pl, err := spatialtree.Layout(t, "hilbert")
	if err != nil {
		panic(err)
	}

	// Clade sizes: leaves contribute 1, internal splits 0; the subtree
	// sum at an internal node is the number of extant descendants.
	vals := make([]int64, t.N())
	leaves := 0
	for v := 0; v < t.N(); v++ {
		if t.IsLeaf(v) {
			vals[v] = 1
			leaves++
		}
	}
	clades := spatialtree.TreefixSum(t, pl, vals)
	if clades.Sums[t.Root()] != int64(leaves) {
		panic("clade count mismatch")
	}
	// Largest non-root clade:
	var best int64
	for v := 0; v < t.N(); v++ {
		if v != t.Root() && clades.Sums[v] > best {
			best = clades.Sums[v]
		}
	}
	fmt.Printf("clade sizes: total taxa=%d largest internal clade=%d\n", leaves, best)
	fmt.Printf("  cost: energy=%d depth=%d rounds=%d\n",
		clades.Cost.Energy, clades.Cost.Depth, clades.Rounds)

	// MRCA queries for disjoint taxon pairs (each vertex in one query —
	// the Theorem 6 regime).
	var leafIDs []int
	for v := 0; v < t.N(); v++ {
		if t.IsLeaf(v) {
			leafIDs = append(leafIDs, v)
		}
	}
	var queries []spatialtree.Query
	for i := 0; i+1 < len(leafIDs) && len(queries) < 2048; i += 2 {
		queries = append(queries, spatialtree.Query{U: leafIDs[i], V: leafIDs[i+1]})
	}
	mrca := spatialtree.BatchedLCA(t, pl, queries, 5)
	oracle := spatialtree.LCAOracle(t)
	depths := t.Depths()
	deepest := 0
	for i, q := range queries {
		if mrca.Answers[i] != oracle.LCA(q.U, q.V) {
			panic("MRCA mismatch against oracle")
		}
		if d := depths[mrca.Answers[i]]; d > deepest {
			deepest = d
		}
	}
	fmt.Printf("mrca: %d taxon pairs, deepest MRCA at depth %d\n", len(queries), deepest)
	fmt.Printf("  cost: energy=%d depth=%d layers=%d\n",
		mrca.Cost.Energy, mrca.Cost.Depth, mrca.Layers)

	// The layout matters: re-run the clade computation on a scattered
	// placement (PRAM-style, no locality).
	scatter, _ := spatialtree.LayoutWithOrder(t, "light-first", "scatter", 1)
	cladesScatter := spatialtree.TreefixSum(t, scatter, vals)
	fmt.Printf("scatter placement: energy=%d (%.1fx light-first) — the paper's point\n",
		cladesScatter.Cost.Energy,
		float64(cladesScatter.Cost.Energy)/float64(clades.Cost.Energy))
}
