// Quickstart: build a tree, lay it out with the paper's light-first ×
// Hilbert layout, run a treefix sum and a batch of LCA queries on the
// spatial-computer simulator, and print the exact model costs (energy =
// distance-weighted communication volume, depth = longest dependent
// message chain).
package main

import (
	"fmt"

	spatialtree "spatialtree"
)

func main() {
	const n = 1 << 14
	t := spatialtree.RandomTree(n, 42)
	fmt.Printf("tree: n=%d height=%d maxdeg=%d\n", t.N(), t.Height(), t.MaxDegree())

	// The paper's layout: light-first order on the Hilbert curve.
	pl, err := spatialtree.Layout(t, "hilbert")
	if err != nil {
		panic(err)
	}
	kernel := spatialtree.KernelEnergy(pl)
	fmt.Printf("layout: side=%d kernel-energy/vertex=%.2f (Theorem 1: O(1))\n",
		pl.Side, kernel.PerVertex)

	// Treefix sum: subtree sizes (value 1 per vertex).
	ones := make([]int64, t.N())
	for i := range ones {
		ones[i] = 1
	}
	res := spatialtree.TreefixSum(t, pl, ones)
	fmt.Printf("treefix: root sum=%d rounds=%d energy=%d depth=%d\n",
		res.Sums[t.Root()], res.Rounds, res.Cost.Energy, res.Cost.Depth)

	// Compare against a BFS layout: same algorithm, polynomially more
	// energy (Section III).
	bfs, _ := spatialtree.LayoutWithOrder(t, "bfs", "hilbert", 1)
	resBFS := spatialtree.TreefixSum(t, bfs, ones)
	fmt.Printf("same treefix on BFS layout: energy=%d (%.1fx light-first)\n",
		resBFS.Cost.Energy, float64(resBFS.Cost.Energy)/float64(res.Cost.Energy))

	// Batched LCA (Theorem 6).
	queries := []spatialtree.Query{
		{U: 17, V: 4093},
		{U: 1, V: 2},
		{U: 0, V: n - 1},
		{U: 12345, V: 54321 % n},
	}
	lcaRes := spatialtree.BatchedLCA(t, pl, queries, 7)
	for i, q := range queries {
		fmt.Printf("LCA(%d, %d) = %d\n", q.U, q.V, lcaRes.Answers[i])
	}
	fmt.Printf("lca batch: layers=%d energy=%d depth=%d\n",
		lcaRes.Layers, lcaRes.Cost.Energy, lcaRes.Cost.Depth)
}
