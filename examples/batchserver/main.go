// Batchserver: serve concurrent clients from one shared batched query
// engine (PR 1's SpatialEngine). Eight client goroutines submit mixed
// treefix / LCA / min-cut work against the same tree; the engine
// coalesces whatever arrives together into shared simulator runs and
// demultiplexes the answers, and a second engine built afterwards shows
// the layout cache skipping the O(n log n) layout pipeline.
package main

import (
	"fmt"
	"sync"

	spatialtree "spatialtree"
)

func main() {
	const n = 1 << 12
	t := spatialtree.RandomTree(n, 42)

	cache := spatialtree.NewLayoutCache(8)
	eng, err := spatialtree.NewEngine(t, spatialtree.EngineOptions{
		Curve:  "hilbert",
		Window: 16,
		Cache:  cache,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("engine: n=%d fingerprint=%x\n", t.N(), spatialtree.TreeFingerprint(t))

	// Eight concurrent clients, each submitting a small mixed batch and
	// waiting on its futures. Requests that land in the same window run
	// on one simulator; LCA sub-batches are merged into a single run.
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64((c + 1) * i % 97)
			}
			futSum := eng.SubmitTreefix(vals, spatialtree.OpAdd)
			futMax := eng.SubmitTreefix(vals, spatialtree.OpMax)
			queries := make([]spatialtree.Query, 32)
			for i := range queries {
				queries[i] = spatialtree.Query{U: (c*131 + i*17) % n, V: (c*37 + i*71) % n}
			}
			futLCA := eng.SubmitLCA(queries)

			sum := futSum.Wait() // Wait flushes; the whole window resolves
			max := futMax.Wait()
			lcas := futLCA.Wait()
			if sum.Err != nil || max.Err != nil || lcas.Err != nil {
				panic("request failed")
			}
			fmt.Printf("client %d: root-sum=%d root-max=%d lca[0]=%d (batch energy=%d)\n",
				c, sum.Sums[t.Root()], max.Sums[t.Root()], lcas.Answers[0], sum.Cost.Energy)
		}(c)
	}
	wg.Wait()

	st := eng.Stats()
	fmt.Printf("served %d requests in %d simulator batches (%.1f req/batch), %d LCA queries in %d runs\n",
		st.Requests, st.Batches, float64(st.Requests)/float64(st.Batches),
		st.LCAQueries, st.LCARuns)

	// A second engine on a structurally identical tree (e.g. the same
	// dataset deserialized again) reuses the cached placement.
	clone, err := spatialtree.NewTree(t.Parents())
	if err != nil {
		panic(err)
	}
	if _, err := spatialtree.NewEngine(clone, spatialtree.EngineOptions{Cache: cache}); err != nil {
		panic(err)
	}
	cs := cache.Stats()
	fmt.Printf("layout cache: hits=%d misses=%d hit-rate=%.0f%% (second engine skipped the layout pipeline)\n",
		cs.Hits, cs.Misses, 100*cs.HitRate())
}
