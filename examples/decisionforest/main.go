// Decision forest: the machine-learning workload from the paper's
// introduction (decision trees and random forests benefit from spatial
// locality). We grow a forest of CART-shaped trees, lay each tree out on
// its own region of the grid, and compare the spatial cost of the two
// messaging patterns a forest evaluation needs:
//
//   - downward: each split node forwards a batch descriptor to its
//     children (local broadcast ≈ top-down treefix);
//   - upward: leaves return per-leaf sample counts that are aggregated
//     at every split (bottom-up treefix).
//
// The same computation is timed wall-clock with the goroutine engine,
// amortizing the layout across repeated inferences as the paper suggests
// (Section I-D).
package main

import (
	"fmt"
	"time"

	spatialtree "spatialtree"

	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
)

func main() {
	const (
		forest   = 16
		samples  = 100000
		leafSize = 16
	)
	r := rng.New(7)

	var totalLF, totalBFS int64
	var nodes int
	engines := make([]*treefixEngine, 0, forest)
	for i := 0; i < forest; i++ {
		t := tree.DecisionTree(samples, leafSize, r)
		nodes += t.N()

		lf, err := spatialtree.Layout(t, "hilbert")
		if err != nil {
			panic(err)
		}
		bfs, _ := spatialtree.LayoutWithOrder(t, "bfs", "hilbert", 1)

		// Upward aggregation: leaves hold sample counts (synthetic),
		// splits sum them.
		vals := make([]int64, t.N())
		for v := 0; v < t.N(); v++ {
			if t.IsLeaf(v) {
				vals[v] = int64(r.Intn(leafSize) + 1)
			}
		}
		up := spatialtree.TreefixSum(t, lf, vals)
		upBFS := spatialtree.TreefixSum(t, bfs, vals)
		totalLF += up.Cost.Energy
		totalBFS += upBFS.Cost.Energy

		engines = append(engines, &treefixEngine{t: t, vals: vals,
			eng: spatialtree.ParallelTreefixEngine(t, 0)})
	}
	fmt.Printf("forest: %d trees, %d nodes total\n", forest, nodes)
	fmt.Printf("aggregation energy: light-first=%d bfs=%d (%.1fx)\n",
		totalLF, totalBFS, float64(totalBFS)/float64(totalLF))

	// Wall-clock: repeated aggregation passes over the whole forest with
	// the goroutine engines (layout amortized — built once above).
	const passes = 20
	start := time.Now()
	var sink int64
	for p := 0; p < passes; p++ {
		for _, fe := range engines {
			sums := fe.eng.BottomUpSum(fe.vals)
			sink += sums[fe.t.Root()]
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("wall-clock: %d aggregation passes over the forest in %v (%.1f Mnodes/s, checksum %d)\n",
		passes, elapsed.Round(time.Millisecond),
		float64(passes*nodes)/elapsed.Seconds()/1e6, sink)
}

type treefixEngine struct {
	t    *tree.Tree
	vals []int64
	eng  interface{ BottomUpSum([]int64) []int64 }
}
