// WSE mapping: estimates what the paper's layout buys on hardware with
// the Cerebras WSE-2's parameters (Section I-A: 850,000 cores on a
// die-sized 2D mesh, one 32-bit message per cycle per hop, ~2-cycle
// launch latency). We map a million-vertex tree onto a WSE-scale grid,
// measure the messaging kernel under several layouts, and convert
// energy/depth into rough on-chip traffic and latency figures.
//
// This is an estimate, not a cycle-accurate simulation: the spatial
// computer model abstracts the interconnect, which is exactly the
// paper's methodology.
package main

import (
	"fmt"

	spatialtree "spatialtree"
)

// WSE-2-like parameters.
const (
	wseCores      = 850000
	cyclesPerHop  = 1
	launchCycles  = 2
	clockGHz      = 1.1
	corePitchMM   = 0.027 // ~21.6mm x 21.6mm per die region of 800x800 cores
	gridSideCores = 922   // ceil(sqrt(850000))
)

func main() {
	const n = 1 << 20 // one vertex per core, ~1M cores (paper's regime)
	t := spatialtree.RandomTree(n, 99)
	fmt.Printf("mapping a %d-vertex tree onto a %dx%d WSE-scale core grid\n",
		t.N(), gridSideCores, gridSideCores)
	fmt.Printf("(model: %d cores, %.1f GHz, %d cycle/hop, %d cycle launch)\n\n",
		wseCores, clockGHz, cyclesPerHop, launchCycles)

	fmt.Printf("%-22s %14s %12s %14s %12s\n",
		"layout", "hops total", "hops/vertex", "traffic mm", "est latency")
	for _, cfg := range []struct{ order, curve string }{
		{"light-first", "hilbert"},
		{"light-first", "zorder"},
		{"bfs", "hilbert"},
		{"random", "hilbert"},
	} {
		pl, err := spatialtree.LayoutWithOrder(t, cfg.order, cfg.curve, 1)
		if err != nil {
			panic(err)
		}
		k := spatialtree.KernelEnergy(pl)
		// Energy = total Manhattan hops of one parent->children kernel.
		trafficMM := float64(k.Energy) * corePitchMM
		// Latency estimate for the kernel: the longest single edge plus
		// launch overhead (all messages go out in parallel waves).
		latencyCycles := float64(launchCycles) + float64(k.MaxDist*cyclesPerHop)
		latencyUS := latencyCycles / (clockGHz * 1e3)
		fmt.Printf("%-22s %14d %12.2f %14.0f %10.3fus\n",
			cfg.order+"/"+cfg.curve, k.Energy, k.PerVertex, trafficMM, latencyUS)
	}

	fmt.Println()
	pl, _ := spatialtree.Layout(t, "hilbert")
	ones := make([]int64, t.N())
	for i := range ones {
		ones[i] = 1
	}
	res := spatialtree.TreefixSum(t, pl, ones)
	cycles := float64(res.Cost.Depth) * (launchCycles + 8) // per-step budget
	fmt.Printf("full treefix sum (subtree sizes) on the light-first layout:\n")
	fmt.Printf("  energy=%d hops, depth=%d message steps, rounds=%d\n",
		res.Cost.Energy, res.Cost.Depth, res.Rounds)
	fmt.Printf("  est. wall time at %.1f GHz: %.1f us (depth-bound, not bandwidth-bound)\n",
		clockGHz, cycles/(clockGHz*1e3))
}
