package spatialtree

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"spatialtree/internal/persist"
)

// The golden fixtures pin the snapshot wire format: re-encoding the
// reference values must reproduce the checked-in bytes exactly, so any
// codec change that drifts the format — field order, varint widths,
// header layout — fails loudly here and forces a conscious version
// bump instead of silently orphaning every existing data directory.

func goldenPlacement() persist.PlacementSnapshot {
	return persist.PlacementSnapshot{
		Parents: []int{-1, 0, 0, 1, 1, 2, 2, 3},
		Curve:   "hilbert",
		Order:   "light-first",
		Side:    4,
		Ranks:   []int{0, 1, 4, 2, 3, 5, 6, 7},
	}
}

func goldenDyn() persist.DynSnapshot {
	return persist.DynSnapshot{
		Parents:       []int{-1, 0, 0, 1},
		Curve:         "hilbert",
		Side:          4,
		Ranks:         []int{0, 2, 8, 4},
		Epsilon:       2.5,
		Epoch:         17,
		Drift:         9,
		Inserts:       11,
		Deletes:       6,
		Rebuilds:      2,
		ParkEnergy:    123,
		MigrateEnergy: 456,
	}
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "persist", name))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestGoldenPlacementFormat(t *testing.T) {
	want := readGolden(t, "placement.v1.snap")
	if got := persist.EncodePlacement(goldenPlacement()); !bytes.Equal(got, want) {
		t.Fatalf("placement wire format drifted from testdata/persist/placement.v1.snap:\n got %x\nwant %x\n(bump the format version rather than regenerate silently)", got, want)
	}
	snap, err := persist.DecodePlacement(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, goldenPlacement()) {
		t.Fatalf("golden placement decodes to %+v", snap)
	}
}

func TestGoldenDynFormat(t *testing.T) {
	want := readGolden(t, "dyn.v1.snap")
	if got := persist.EncodeDyn(goldenDyn()); !bytes.Equal(got, want) {
		t.Fatalf("dyn wire format drifted from testdata/persist/dyn.v1.snap:\n got %x\nwant %x\n(bump the format version rather than regenerate silently)", got, want)
	}
	snap, err := persist.DecodeDyn(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, goldenDyn()) {
		t.Fatalf("golden dyn decodes to %+v", snap)
	}
}

// TestGoldenCorruptCRC: a stored snapshot whose payload no longer
// matches its CRC must come back as the typed ErrSnapshotCorrupt — from
// the raw decoder and from the public LoadSnapshot alike — never as a
// panic.
func TestGoldenCorruptCRC(t *testing.T) {
	raw := readGolden(t, "corrupt-crc.snap")
	if _, err := persist.Decode(raw); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("Decode(corrupt) = %v, want ErrSnapshotCorrupt", err)
	}
	if _, err := LoadSnapshot(bytes.NewReader(raw)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("LoadSnapshot(corrupt) = %v, want ErrSnapshotCorrupt", err)
	}
}

// TestSaveLoadSnapshotRoundTrip covers the public API end to end: a
// real layout is saved, loaded, and must serve identical kernel
// results.
func TestSaveLoadSnapshotRoundTrip(t *testing.T) {
	tr := RandomTree(500, 11)
	p, err := Layout(tr, "hilbert")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, p); err != nil {
		t.Fatal(err)
	}
	p2, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Side != p.Side || p2.Curve.Name() != p.Curve.Name() || p2.Order.Name != p.Order.Name {
		t.Fatalf("snapshot round trip changed the placement shape")
	}
	if !reflect.DeepEqual(p2.Order.Rank, p.Order.Rank) {
		t.Fatal("snapshot round trip changed the ranks")
	}
	vals := make([]int64, tr.N())
	for i := range vals {
		vals[i] = int64(i)
	}
	a := TreefixSum(tr, p, vals)
	b := TreefixSum(p2.Tree, p2, vals)
	if !reflect.DeepEqual(a.Sums, b.Sums) {
		t.Fatal("loaded placement serves different treefix sums")
	}
}
