package spatialtree

// Differential test suite: every kernel is computed by every
// implementation the repository ships and the results are asserted
// identical. The spatial-simulator algorithms are Las Vegas, so
// agreement across random trees × seeds × operators is the strongest
// correctness statement available short of the proofs.
//
// Implementations per kernel:
//
//	treefix (bottom-up)  spatial simulator · goroutine Engine · PRAM
//	                     baseline · sequential oracle · batched engine
//	treefix (top-down)   spatial simulator · goroutine Engine ·
//	                     sequential oracle · batched engine
//	batched LCA          spatial simulator · binary-lifting oracle ·
//	                     goroutine Engine · PRAM baseline · batched engine
//	1-respecting min-cut spatial simulator · brute-force oracle ·
//	                     batched engine
//	expression eval      spatial simulator · sequential oracle ·
//	                     batched engine

import (
	"fmt"
	"testing"

	"spatialtree/internal/engine"
	"spatialtree/internal/machine"
	"spatialtree/internal/mincut"
	"spatialtree/internal/pram"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/treefix"
)

var (
	diffSizes = []int{15, 64, 257, 1 << 10}
	diffSeeds = []uint64{1, 2}
	diffOps   = []Op{OpAdd, OpMax, OpMin, OpXor}
)

// diffTrees yields the random test trees: one unbounded-degree random
// attachment tree and one bounded-degree tree per (size, seed).
func diffTrees(n int, seed uint64) []*Tree {
	return []*Tree{
		RandomTree(n, seed),
		RandomBinaryTree(n, seed+100),
	}
}

func diffVals(n int, seed uint64) []int64 {
	r := rng.New(seed)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(r.Intn(2001)) - 1000
	}
	return vals
}

func assertInt64s(t *testing.T, label string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d = %d, want %d", label, i, got[i], want[i])
		}
	}
}

func TestDifferentialTreefixBottomUp(t *testing.T) {
	for _, n := range diffSizes {
		for _, seed := range diffSeeds {
			for ti, tr := range diffTrees(n, seed) {
				pl, err := Layout(tr, "hilbert")
				if err != nil {
					t.Fatal(err)
				}
				eng, err := NewEngine(tr, EngineOptions{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				parEng := ParallelTreefixEngine(tr, 4)
				for _, op := range diffOps {
					label := fmt.Sprintf("n=%d seed=%d tree=%d op=%s", n, seed, ti, op.Name)
					vals := diffVals(tr.N(), seed+uint64(ti))
					want := SequentialTreefix(tr, vals, op)

					spatial := TreefixOp(tr, pl, vals, op, seed)
					assertInt64s(t, label+" spatial-vs-sequential", spatial.Sums, want)

					res := eng.SubmitTreefix(vals, op).Wait()
					if res.Err != nil {
						t.Fatal(res.Err)
					}
					assertInt64s(t, label+" engine-vs-sequential", res.Sums, want)

					if op.Name == "add" {
						assertInt64s(t, label+" goroutine-vs-sequential",
							parEng.BottomUpSum(vals), want)
						s := machine.New(2*tr.N(), sfc.Hilbert{})
						assertInt64s(t, label+" pram-vs-sequential",
							pram.TreefixDirect(s, tr, vals), want)
					}
				}
			}
		}
	}
}

func TestDifferentialTreefixTopDown(t *testing.T) {
	for _, n := range diffSizes {
		for _, seed := range diffSeeds {
			for ti, tr := range diffTrees(n, seed) {
				pl, err := Layout(tr, "hilbert")
				if err != nil {
					t.Fatal(err)
				}
				eng, err := NewEngine(tr, EngineOptions{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				parEng := ParallelTreefixEngine(tr, 4)
				for _, op := range diffOps {
					label := fmt.Sprintf("n=%d seed=%d tree=%d op=%s", n, seed, ti, op.Name)
					vals := diffVals(tr.N(), seed+uint64(ti)+7)
					want := treefix.SequentialTopDown(tr, vals, op)

					spatial := TopDownTreefix(tr, pl, vals, op, seed)
					assertInt64s(t, label+" spatial-vs-sequential", spatial.Sums, want)

					res := eng.SubmitTopDown(vals, op).Wait()
					if res.Err != nil {
						t.Fatal(res.Err)
					}
					assertInt64s(t, label+" engine-vs-sequential", res.Sums, want)

					if op.Name == "add" {
						assertInt64s(t, label+" goroutine-vs-sequential",
							parEng.TopDownSum(vals), want)
					}
				}
			}
		}
	}
}

func TestDifferentialLCA(t *testing.T) {
	for _, n := range diffSizes {
		for _, seed := range diffSeeds {
			for ti, tr := range diffTrees(n, seed) {
				label := fmt.Sprintf("n=%d seed=%d tree=%d", n, seed, ti)
				pl, err := Layout(tr, "hilbert")
				if err != nil {
					t.Fatal(err)
				}
				qr := rng.New(seed + uint64(ti)*31)
				queries := make([]Query, tr.N()/2)
				pairs := make([][2]int, len(queries))
				for i := range queries {
					u, v := qr.Intn(tr.N()), qr.Intn(tr.N())
					queries[i] = Query{U: u, V: v}
					pairs[i] = [2]int{u, v}
				}

				oracle := LCAOracle(tr)
				want := make([]int, len(queries))
				for i, q := range queries {
					want[i] = oracle.LCA(q.U, q.V)
				}

				spatial := BatchedLCA(tr, pl, queries, seed)
				goroutine := ParallelLCAEngine(tr, 4).BatchLCA(queries)
				s := machine.New(tr.N(), sfc.Hilbert{})
				prambase := pram.LCADirect(s, tr, pairs)

				eng, err := NewEngine(tr, EngineOptions{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				res := eng.SubmitLCA(queries).Wait()
				if res.Err != nil {
					t.Fatal(res.Err)
				}

				for i := range queries {
					if spatial.Answers[i] != want[i] {
						t.Fatalf("%s query %d: spatial %d, oracle %d", label, i, spatial.Answers[i], want[i])
					}
					if goroutine[i] != want[i] {
						t.Fatalf("%s query %d: goroutine %d, oracle %d", label, i, goroutine[i], want[i])
					}
					if prambase[i] != want[i] {
						t.Fatalf("%s query %d: pram %d, oracle %d", label, i, prambase[i], want[i])
					}
					if res.Answers[i] != want[i] {
						t.Fatalf("%s query %d: engine %d, oracle %d", label, i, res.Answers[i], want[i])
					}
				}
			}
		}
	}
}

func TestDifferentialMinCut(t *testing.T) {
	for _, n := range diffSizes {
		for _, seed := range diffSeeds {
			tr := RandomTree(n, seed)
			label := fmt.Sprintf("n=%d seed=%d", n, seed)
			pl, err := Layout(tr, "hilbert")
			if err != nil {
				t.Fatal(err)
			}
			edges := mincut.RandomGraph(tr, n/2, 12, rng.New(seed+3))
			want := mincut.OneRespectingSequential(tr, edges)

			spatial, _, err := OneRespectingMinCut(tr, pl, edges, seed)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewEngine(tr, EngineOptions{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			res := eng.SubmitMinCut(edges).Wait()
			if res.Err != nil {
				t.Fatal(res.Err)
			}

			assertInt64s(t, label+" spatial-vs-bruteforce cuts", spatial.Cuts, want.Cuts)
			assertInt64s(t, label+" engine-vs-bruteforce cuts", res.MinCut.Cuts, want.Cuts)
			if spatial.MinWeight != want.MinWeight || res.MinCut.MinWeight != want.MinWeight {
				t.Fatalf("%s: min weights %d (spatial) / %d (engine), want %d",
					label, spatial.MinWeight, res.MinCut.MinWeight, want.MinWeight)
			}
		}
	}
}

func TestDifferentialExprEval(t *testing.T) {
	for _, leaves := range []int{8, 33, 129, 512} {
		for _, seed := range diffSeeds {
			label := fmt.Sprintf("leaves=%d seed=%d", leaves, seed)
			x := RandomExpression(leaves, seed)
			want := x.EvalSequential()[x.Tree.Root()]

			pl, err := Layout(x.Tree, "hilbert")
			if err != nil {
				t.Fatal(err)
			}
			got, _ := EvaluateExpression(x, pl)
			if got != want {
				t.Fatalf("%s: spatial %d, sequential %d", label, got, want)
			}

			eng, err := NewEngine(x.Tree, EngineOptions{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			res := eng.SubmitExpr(x).Wait()
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if res.Value != want {
				t.Fatalf("%s: engine %d, sequential %d", label, res.Value, want)
			}
		}
	}
}

// TestDifferentialEngineAcrossCurves pins engine-batched results to the
// direct-call path on every registered curve (the batching layer must be
// invisible to results regardless of placement).
func TestDifferentialEngineAcrossCurves(t *testing.T) {
	tr := RandomTree(257, 9)
	vals := diffVals(tr.N(), 11)
	want := SequentialTreefix(tr, vals, OpAdd)
	for _, c := range Curves() {
		eng, err := engine.New(tr, engine.Options{Curve: c.Name(), Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		res := eng.SubmitTreefix(vals, OpAdd).Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		assertInt64s(t, "curve="+c.Name(), res.Sums, want)
	}
}
