package spatialtree

// Backend-differential suite: the execution-backend layer must be
// invisible to results. Every kernel the engine serves — bottom-up and
// top-down treefix (all four registered operators), batched LCA,
// 1-respecting min-cut, expression evaluation — is computed through
// both backends on identical inputs and compared against the host
// oracles: native ≡ sim ≡ sequential.
//
// The native arm runs at every size; the direct native-vs-sim engine
// comparison caps at 257 vertices (simulator runs dominate test time,
// and the larger sim sizes are already exercised by difftest_test.go —
// both arms are pinned to the same oracle either way).

import (
	"fmt"
	"testing"

	"spatialtree/internal/engine"
	"spatialtree/internal/exec"
	"spatialtree/internal/mincut"
	"spatialtree/internal/rng"
	"spatialtree/internal/treefix"
)

// backendEngines builds one engine per backend for tr; sim is omitted
// for n beyond simMax.
func backendEngines(t *testing.T, tr *Tree, seed uint64, simMax int) map[string]*engine.Engine {
	t.Helper()
	engines := map[string]*engine.Engine{}
	for _, name := range exec.Names() {
		if name == exec.Sim && tr.N() > simMax {
			continue
		}
		eng, err := engine.New(tr, engine.Options{Backend: name, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		engines[name] = eng
	}
	return engines
}

const diffSimMax = 257

func TestBackendDifferentialTreefix(t *testing.T) {
	for _, n := range diffSizes {
		for _, seed := range diffSeeds {
			for ti, tr := range diffTrees(n, seed) {
				engines := backendEngines(t, tr, seed, diffSimMax)
				for _, op := range diffOps {
					label := fmt.Sprintf("n=%d seed=%d tree=%d op=%s", n, seed, ti, op.Name)
					vals := diffVals(tr.N(), seed+uint64(ti)+13)
					wantBU := SequentialTreefix(tr, vals, op)
					wantTD := treefix.SequentialTopDown(tr, vals, op)
					for name, eng := range engines {
						bu := eng.SubmitTreefix(vals, op)
						td := eng.SubmitTopDown(vals, op)
						resBU, resTD := bu.Wait(), td.Wait()
						if resBU.Err != nil || resTD.Err != nil {
							t.Fatalf("%s backend=%s: %v / %v", label, name, resBU.Err, resTD.Err)
						}
						assertInt64s(t, label+" "+name+"-bottomup", resBU.Sums, wantBU)
						assertInt64s(t, label+" "+name+"-topdown", resTD.Sums, wantTD)
					}
				}
			}
		}
	}
}

func TestBackendDifferentialLCAMinCutExpr(t *testing.T) {
	for _, n := range diffSizes {
		for _, seed := range diffSeeds {
			for ti, tr := range diffTrees(n, seed) {
				label := fmt.Sprintf("n=%d seed=%d tree=%d", n, seed, ti)
				engines := backendEngines(t, tr, seed, diffSimMax)

				qr := rng.New(seed + uint64(ti)*17)
				queries := make([]Query, tr.N()/2)
				for i := range queries {
					queries[i] = Query{U: qr.Intn(tr.N()), V: qr.Intn(tr.N())}
				}
				oracle := LCAOracle(tr)
				edges := mincut.RandomGraph(tr, tr.N()/2, 12, rng.New(seed+5))
				wantCut := mincut.OneRespectingSequential(tr, edges)

				for name, eng := range engines {
					futL := eng.SubmitLCA(queries)
					futC := eng.SubmitMinCut(edges)
					resL, resC := futL.Wait(), futC.Wait()
					if resL.Err != nil || resC.Err != nil {
						t.Fatalf("%s backend=%s: %v / %v", label, name, resL.Err, resC.Err)
					}
					for i, q := range queries {
						if want := oracle.LCA(q.U, q.V); resL.Answers[i] != want {
							t.Fatalf("%s backend=%s query %d: %d, want %d", label, name, i, resL.Answers[i], want)
						}
					}
					assertInt64s(t, label+" "+name+"-cuts", resC.MinCut.Cuts, wantCut.Cuts)
					if resC.MinCut.MinWeight != wantCut.MinWeight || resC.MinCut.ArgVertex != wantCut.ArgVertex {
						t.Fatalf("%s backend=%s: cut (%d, v%d), want (%d, v%d)", label, name,
							resC.MinCut.MinWeight, resC.MinCut.ArgVertex, wantCut.MinWeight, wantCut.ArgVertex)
					}
				}
			}
		}
	}
	for _, leaves := range []int{8, 129, 512} {
		x := RandomExpression(leaves, 21)
		want := x.EvalSequential()[x.Tree.Root()]
		engines := backendEngines(t, x.Tree, 3, diffSimMax)
		for name, eng := range engines {
			res := eng.SubmitExpr(x).Wait()
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if res.Value != want {
				t.Fatalf("leaves=%d backend=%s: expr %d, want %d", leaves, name, res.Value, want)
			}
		}
	}
}

// TestBackendDifferentialMixedBatch coalesces a mixed batch on each
// backend — the serving shape, where one flush carries several kinds —
// and pins every future to the oracles.
func TestBackendDifferentialMixedBatch(t *testing.T) {
	tr := RandomTree(257, 41)
	n := tr.N()
	vals := diffVals(n, 42)
	qr := rng.New(43)
	queries := make([]Query, 32)
	for i := range queries {
		queries[i] = Query{U: qr.Intn(n), V: qr.Intn(n)}
	}
	edges := mincut.RandomGraph(tr, n/2, 7, rng.New(44))
	wantBU := SequentialTreefix(tr, vals, OpMax)
	oracle := LCAOracle(tr)
	wantCut := mincut.OneRespectingSequential(tr, edges)
	for _, name := range exec.Names() {
		eng, err := engine.New(tr, engine.Options{Backend: name, Seed: 9, Window: 16})
		if err != nil {
			t.Fatal(err)
		}
		futB := eng.SubmitTreefix(vals, OpMax)
		futQ1 := eng.SubmitLCA(queries[:16])
		futQ2 := eng.SubmitLCA(queries[16:])
		futC := eng.SubmitMinCut(edges)
		eng.Flush()
		if res := futB.Wait(); res.Err != nil || !equalInt64s(res.Sums, wantBU) {
			t.Fatalf("backend=%s treefix: err=%v", name, res.Err)
		}
		answers := append(append([]int(nil), futQ1.Wait().Answers...), futQ2.Wait().Answers...)
		for i, q := range queries {
			if want := oracle.LCA(q.U, q.V); answers[i] != want {
				t.Fatalf("backend=%s coalesced query %d: %d, want %d", name, i, answers[i], want)
			}
		}
		if res := futC.Wait(); res.Err != nil || res.MinCut.MinWeight != wantCut.MinWeight {
			t.Fatalf("backend=%s mincut: err=%v", name, res.Err)
		}
	}
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
