package spatialtree

// Native fuzz targets for the two validated entry points of the
// library: tree construction from untrusted parent arrays and the
// space-filling-curve bijections. Seed corpora live in testdata/fuzz;
// CI runs a short -fuzz smoke pass on both targets.

import (
	"bytes"
	"reflect"
	"testing"

	"spatialtree/internal/order"
	"spatialtree/internal/persist"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/treefix"
	"spatialtree/internal/wire"
)

// fuzzParents decodes fuzz bytes into a parent array: one signed byte
// per vertex, so the fuzzer can reach valid trees (parents < n), the
// root marker (-1), and out-of-range/cyclic garbage with equal ease.
func fuzzParents(data []byte) []int {
	if len(data) > 512 {
		data = data[:512]
	}
	parents := make([]int, len(data))
	for i, b := range data {
		parents[i] = int(int8(b))
	}
	return parents
}

// FuzzFromParents asserts NewTree never panics: any byte string decodes
// to either an error or a tree satisfying the structural invariants.
func FuzzFromParents(f *testing.F) {
	f.Add([]byte{})                             // empty tree
	f.Add([]byte{0xff})                         // single root
	f.Add([]byte{0xff, 0x00, 0x00, 0x01, 0x01}) // valid binary tree
	f.Add([]byte{0x01, 0xff, 0x01})             // root in the middle
	f.Add([]byte{0x00, 0x01})                   // 2-cycle, no root
	f.Add([]byte{0xff, 0x05})                   // out-of-range parent
	f.Add([]byte{0xff, 0xfe, 0x00})             // negative non-root marker
	f.Add([]byte{0xff, 0xff})                   // two roots
	f.Fuzz(func(t *testing.T, data []byte) {
		parents := fuzzParents(data)
		tr, err := NewTree(parents)
		if err != nil {
			return // rejected: that is a valid outcome for garbage
		}
		n := tr.N()
		if n != len(parents) {
			t.Fatalf("N() = %d, want %d", n, len(parents))
		}
		if n == 0 {
			return
		}
		// Accepted trees must satisfy the invariants every algorithm
		// relies on: a single root, every vertex reaching it, children
		// lists consistent with the parent array, and traversals
		// covering all vertices exactly once.
		root := tr.Root()
		if root < 0 || root >= n || tr.Parent(root) != -1 {
			t.Fatalf("bad root %d", root)
		}
		for v := 0; v < n; v++ {
			steps := 0
			for u := v; u != root; u = tr.Parent(u) {
				if steps++; steps > n {
					t.Fatalf("vertex %d does not reach the root", v)
				}
			}
			for _, c := range tr.Children(v) {
				if tr.Parent(c) != v {
					t.Fatalf("child %d of %d has parent %d", c, v, tr.Parent(c))
				}
			}
		}
		if got := len(tr.PostOrder()); got != n {
			t.Fatalf("post-order visits %d of %d vertices", got, n)
		}
		if sz := tr.SubtreeSizes(); sz[root] != n {
			t.Fatalf("root subtree size %d, want %d", sz[root], n)
		}
		if o := order.LightFirst(tr); !o.IsPermutation() {
			t.Fatal("light-first order is not a permutation")
		}
		// Round trip: the accepted tree's own parent array must be
		// accepted again and fingerprint identically.
		clone, err := NewTree(tr.Parents())
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if TreeFingerprint(clone) != TreeFingerprint(tr) {
			t.Fatal("round trip changed the fingerprint")
		}
	})
}

// FuzzDynMutation drives random insert/delete sequences through the
// dynamic layout and asserts, after every mutation, the invariants the
// engine's mutable serving path relies on: positions stay injective
// inside the grid, the free-slot accounting (used[]) matches the
// position assignment, the parent/children mirrors agree, and snapshots
// validate as trees (all via CheckInvariants); invalid mutations return
// errors instead of panicking; and immediately after a rebuild the
// kernel energy is within a constant factor of a fresh light-first
// layout's.
//
// Byte encoding: data[0] picks the starting tree size; each following
// byte is one mutation — high bit set deletes vertex b&0x7f mod n
// (possibly invalid on purpose), otherwise inserts a leaf under b mod n.
func FuzzDynMutation(f *testing.F) {
	f.Add([]byte{5, 0, 1, 2, 3, 4})                                  // inserts only
	f.Add([]byte{8, 0x81, 0x87, 2, 0x80, 1, 0x9f, 3})                // mixed, some invalid deletes
	f.Add([]byte{2, 0, 0x81, 0, 0x81, 0, 0x81})                      // insert/delete churn on a tiny tree
	f.Add([]byte{30, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}) // drift toward a rebuild
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		if len(data) > 256 {
			data = data[:256]
		}
		n := int(data[0])%30 + 2
		d, err := NewDynamicLayout(RandomTree(n, 1), "hilbert", 0.25)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range data[1:] {
			rebuildsBefore := d.Rebuilds
			if b&0x80 != 0 {
				// Deletions may legitimately fail (root, internal
				// vertex); the contract is error-not-panic.
				d.DeleteLeaf(int(b&0x7f) % d.N())
			} else {
				if _, err := d.InsertLeaf(int(b) % d.N()); err != nil {
					t.Fatalf("insert under valid parent failed: %v", err)
				}
			}
			if err := d.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if d.Rebuilds > rebuildsBefore {
				fresh, err := d.FreshKernelCost()
				if err != nil {
					t.Fatal(err)
				}
				if got := d.KernelCost(); fresh.Energy > 0 && got.Energy > 4*fresh.Energy {
					t.Fatalf("post-rebuild kernel %d exceeds 4x fresh optimum %d (n=%d)",
						got.Energy, fresh.Energy, d.N())
				}
			}
		}
	})
}

// FuzzSnapshotDecode asserts the persistence codec's contract on
// untrusted bytes: persist.Decode either rejects the input with a typed
// error (ErrCorrupt / ErrVersion) or returns a snapshot whose
// re-encoding decodes back to the same value — and it never panics,
// never allocates in proportion to a forged length field (every count
// is bounded by the bytes actually present), and public LoadSnapshot
// agrees on acceptance for placement frames.
func FuzzSnapshotDecode(f *testing.F) {
	placement := persist.EncodePlacement(persist.PlacementSnapshot{
		Parents: []int{-1, 0, 0, 1, 1},
		Curve:   "hilbert",
		Order:   "light-first",
		Side:    4,
		Ranks:   []int{0, 1, 2, 3, 4},
	})
	dyn := persist.EncodeDyn(persist.DynSnapshot{
		Parents: []int{-1, 0, 0},
		Curve:   "zorder",
		Side:    4,
		Ranks:   []int{0, 2, 9},
		Epsilon: 0.25,
		Epoch:   3,
		Inserts: 2, Deletes: 1,
	})
	f.Add(placement)
	f.Add(dyn)
	f.Add([]byte{})
	f.Add([]byte("STSN"))
	f.Add(placement[:headerTruncLen(placement)])
	corrupt := append([]byte(nil), dyn...)
	corrupt[len(corrupt)-2] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := persist.Decode(data)
		if err != nil {
			return // rejection is the valid outcome for garbage
		}
		// Accepted frames must round-trip through a re-encode.
		switch s := v.(type) {
		case persist.PlacementSnapshot:
			again, err := persist.DecodePlacement(persist.EncodePlacement(s))
			if err != nil {
				t.Fatalf("re-encode rejected: %v", err)
			}
			if !reflect.DeepEqual(again, s) {
				t.Fatalf("round trip changed the snapshot: %+v vs %+v", again, s)
			}
			// The public loader must not panic either; it may still
			// reject (its tree/rank validation is stricter).
			_, _ = LoadSnapshot(bytes.NewReader(data))
		case persist.DynSnapshot:
			again, err := persist.DecodeDyn(persist.EncodeDyn(s))
			if err != nil {
				t.Fatalf("re-encode rejected: %v", err)
			}
			if !reflect.DeepEqual(again, s) {
				t.Fatalf("round trip changed the snapshot: %+v vs %+v", again, s)
			}
		default:
			t.Fatalf("Decode returned unexpected type %T", v)
		}
	})
}

// FuzzWireDecode asserts the binary serving protocol's contract on
// untrusted bytes: the frame reader and the payload decoders either
// reject input with a typed error (ErrCorrupt / ErrVersion /
// ErrTooLarge) or accept a frame whose decoded value re-encodes
// canonically — AppendX over the decoded value reproduces a frame that
// decodes identically. They never panic and never allocate in
// proportion to a forged count (every count is bounded by the bytes
// actually present). This is the adversarial counterpart of the
// server's TCP listener, which feeds network bytes to exactly this
// code.
func FuzzWireDecode(f *testing.F) {
	f.Add(wire.AppendPing(nil))
	f.Add(wire.AppendQuery(nil, &wire.Query{
		ID: 3, Kind: wire.KindTreefix, TreeID: "t12ab", Op: "max", Vals: []int64{5, -2, 0},
	}))
	f.Add(wire.AppendQuery(nil, &wire.Query{
		ID: 4, Kind: wire.KindLCA, Parents: []int{-1, 0, 0},
		Queries: []wire.LCAQuery{{U: 1, V: 2}},
	}))
	f.Add(wire.AppendQuery(nil, &wire.Query{
		ID: 5, Kind: wire.KindMinCut, Parents: []int{-1, 0, 1},
		Edges: []wire.Edge{{U: 0, V: 2, W: 7}},
	}))
	f.Add(wire.AppendQuery(nil, &wire.Query{
		ID: 6, Kind: wire.KindExpr, TreeID: "t0", ExprKinds: []uint8{1, 0, 0}, Vals: []int64{0, 2, 3},
	}))
	f.Add(wire.AppendResult(nil, &wire.Result{
		ID: 3, Kind: wire.KindTreefix, Sums: []int64{5, 3, 0},
		Cost: wire.Cost{Energy: 10, Messages: 4, Depth: 2},
	}))
	f.Add(wire.AppendError(nil, &wire.Error{ID: 9, Status: wire.StatusTooMany, Msg: "request queue full"}))
	f.Add([]byte("STWR"))     // truncated header
	f.Add([]byte("STSN\x01")) // the persist magic, not ours
	corruptFrame := wire.AppendPong(nil)
	corruptFrame[len(corruptFrame)-1] ^= 0xff
	f.Add(corruptFrame)
	two := wire.AppendPing(wire.AppendPong(nil)) // two frames back to back
	f.Add(two)
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := wire.NewReader(bytes.NewReader(data), 1<<20)
		for {
			kind, payload, err := rd.Next()
			if err != nil {
				return // typed rejection or EOF: the valid outcome for garbage
			}
			switch kind {
			case wire.FrameQuery:
				var q wire.Query
				if q.Decode(payload) != nil {
					continue
				}
				frame := wire.AppendQuery(nil, &q)
				var q2 wire.Query
				roundTripPayload(t, frame, &q2)
				if again := wire.AppendQuery(nil, &q2); !bytes.Equal(frame, again) {
					t.Fatalf("query re-encode not canonical:\n %x\n %x", frame, again)
				}
			case wire.FrameResult:
				var r wire.Result
				if r.Decode(payload) != nil {
					continue
				}
				frame := wire.AppendResult(nil, &r)
				var r2 wire.Result
				roundTripPayload(t, frame, &r2)
				if again := wire.AppendResult(nil, &r2); !bytes.Equal(frame, again) {
					t.Fatalf("result re-encode not canonical:\n %x\n %x", frame, again)
				}
			case wire.FrameError:
				var e wire.Error
				if e.Decode(payload) != nil {
					continue
				}
				if !bytes.Equal(wire.AppendError(nil, &e), wire.AppendError(nil, &e)) {
					t.Fatal("error encoding not deterministic")
				}
			}
		}
	})
}

// roundTripPayload re-parses a just-encoded frame and decodes its
// payload into out (a *wire.Query or *wire.Result); encode must always
// produce frames our own reader accepts.
func roundTripPayload(t *testing.T, frame []byte, out interface{ Decode([]byte) error }) {
	t.Helper()
	rd := wire.NewReader(bytes.NewReader(frame), 1<<20)
	_, payload, err := rd.Next()
	if err != nil {
		t.Fatalf("our own encoding rejected: %v", err)
	}
	if err := out.Decode(payload); err != nil {
		t.Fatalf("our own payload rejected: %v", err)
	}
}

func headerTruncLen(frame []byte) int {
	if len(frame) < 10 {
		return len(frame)
	}
	return 10
}

// FuzzNativeTreefix differential-fuzzes the native treefix executor:
// any parent array the tree validator accepts, under any registered
// operator and any value assignment, must produce exactly the
// sequential oracle's bottom-up and top-down folds — across every
// dispatch path (prefix-scan difference, sparse range table, pointer
// doubling, host fallback) and both the single-worker and parallel
// grains.
func FuzzNativeTreefix(f *testing.F) {
	f.Add([]byte{0xff}, byte(0), uint64(1))                               // single vertex, add
	f.Add([]byte{0xff, 0x00, 0x00, 0x01, 0x01}, byte(1), uint64(2))       // binary tree, max
	f.Add([]byte{0xff, 0x00, 0x01, 0x02, 0x03, 0x04}, byte(2), uint64(3)) // path, min
	f.Add([]byte{0x02, 0x02, 0xff, 0x02, 0x02}, byte(3), uint64(4))       // star, root mid-array, xor
	f.Add([]byte{0x01, 0xff, 0x01, 0x02, 0x02, 0x03}, byte(0), uint64(5)) // parent ids above child ids
	f.Fuzz(func(t *testing.T, data []byte, opIdx byte, valSeed uint64) {
		parents := fuzzParents(data)
		tr, err := NewTree(parents)
		if err != nil || tr.N() == 0 {
			return // garbage or empty: nothing to differentiate
		}
		ops := []Op{OpAdd, OpMax, OpMin, OpXor}
		op := ops[int(opIdx)%len(ops)]
		r := rng.New(valSeed)
		vals := make([]int64, tr.N())
		for i := range vals {
			vals[i] = int64(r.Intn(4001)) - 2000
		}
		wantBU := treefix.SequentialBottomUp(tr, vals, op)
		wantTD := treefix.SequentialTopDown(tr, vals, op)
		for _, workers := range []int{1, 4} {
			e := ParallelTreefixEngine(tr, workers)
			gotBU, err := e.BottomUp(vals, op)
			if err != nil {
				t.Fatalf("bottom-up w=%d: %v", workers, err)
			}
			gotTD, err := e.TopDown(vals, op)
			if err != nil {
				t.Fatalf("top-down w=%d: %v", workers, err)
			}
			for v := 0; v < tr.N(); v++ {
				if gotBU[v] != wantBU[v] {
					t.Fatalf("op=%s w=%d bottom-up[%d] = %d, oracle %d", op.Name, workers, v, gotBU[v], wantBU[v])
				}
				if gotTD[v] != wantTD[v] {
					t.Fatalf("op=%s w=%d top-down[%d] = %d, oracle %d", op.Name, workers, v, gotTD[v], wantTD[v])
				}
			}
		}
	})
}

// FuzzCurveRoundTrip asserts that every registered curve is a bijection
// in both directions on legal grids: XY(Index(p)) == p for in-grid
// points p, and Index(XY(i)) == i for in-range ranks i.
func FuzzCurveRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint32(0))
	f.Add(uint16(2), uint32(3))
	f.Add(uint16(16), uint32(255))
	f.Add(uint16(257), uint32(66049)) // forces side 3^k on Peano, 2^k elsewhere
	f.Add(uint16(1000), uint32(999999))
	f.Fuzz(func(t *testing.T, n uint16, idx uint32) {
		points := int(n)
		if points == 0 {
			points = 1
		}
		for _, c := range sfc.Registry() {
			side := c.Side(points)
			if side*side < points {
				t.Fatalf("%s: Side(%d) = %d too small", c.Name(), points, side)
			}
			i := int(idx) % (side * side)
			x, y := c.XY(i, side)
			if x < 0 || x >= side || y < 0 || y >= side {
				t.Fatalf("%s: XY(%d, %d) = (%d,%d) off grid", c.Name(), i, side, x, y)
			}
			if back := c.Index(x, y, side); back != i {
				t.Fatalf("%s: Index(XY(%d)) = %d", c.Name(), i, back)
			}
			// Point(Rank(p)) == p for an arbitrary in-grid point p.
			px, py := int(idx)%side, (int(idx)/side)%side
			r := c.Index(px, py, side)
			if r < 0 || r >= side*side {
				t.Fatalf("%s: Index(%d,%d,%d) = %d out of range", c.Name(), px, py, side, r)
			}
			if bx, by := c.XY(r, side); bx != px || by != py {
				t.Fatalf("%s: XY(Index(%d,%d)) = (%d,%d)", c.Name(), px, py, bx, by)
			}
		}
	})
}
