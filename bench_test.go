package spatialtree

// Benchmark harness: one benchmark per reproduction experiment E1-E12
// (see DESIGN.md §5 for the claim each one checks, and EXPERIMENTS.md
// for recorded results). Beyond wall-clock ns/op, the benchmarks report
// the spatial-model metrics as custom units: energy/vertex (the
// quantity the paper's O(n) and O(n log n) bounds normalize),
// model-depth, and where relevant the ratio against the PRAM baseline.
//
// Run everything:  go test -bench=. -benchmem
// One experiment:  go test -bench=BenchmarkE9 -benchmem

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spatialtree/internal/dynlayout"
	"spatialtree/internal/engine"
	"spatialtree/internal/eulertour"
	"spatialtree/internal/exec"
	"spatialtree/internal/exprtree"
	"spatialtree/internal/layout"
	"spatialtree/internal/lca"
	"spatialtree/internal/listrank"
	"spatialtree/internal/machine"
	"spatialtree/internal/mincut"
	"spatialtree/internal/order"
	"spatialtree/internal/par"
	"spatialtree/internal/persist"
	"spatialtree/internal/pram"
	"spatialtree/internal/rng"
	"spatialtree/internal/server"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
	"spatialtree/internal/tune"
	"spatialtree/internal/vtree"
	"spatialtree/internal/wire"
)

const benchN = 1 << 14

// BenchmarkE1CurveConstants measures the distance-bound constant scan
// (E1: α = 3 for Hilbert, unbounded for Z).
func BenchmarkE1CurveConstants(b *testing.B) {
	for _, c := range []sfc.Curve{sfc.Hilbert{}, sfc.ZOrder{}, sfc.Peano{}} {
		b.Run(c.Name(), func(b *testing.B) {
			side := c.Side(1 << 12)
			var alpha float64
			for i := 0; i < b.N; i++ {
				alpha = sfc.MeasureDistanceBoundSampled(c, side).Alpha
			}
			b.ReportMetric(alpha, "alpha")
		})
	}
}

// BenchmarkE2BadLayouts measures the Section III worst cases: BFS on a
// perfect binary tree vs light-first.
func BenchmarkE2BadLayouts(b *testing.B) {
	t := tree.PerfectBinary(14)
	for _, ord := range []string{"bfs", "light-first"} {
		b.Run(ord, func(b *testing.B) {
			o, _ := order.ByName(ord, t, rng.New(1))
			var per float64
			for i := 0; i < b.N; i++ {
				p := layout.New(t, o, sfc.Hilbert{})
				per = layout.ParentChildEnergy(p).PerMessage
			}
			b.ReportMetric(per, "dist/msg")
		})
	}
}

// BenchmarkE3EnergyBound measures the Theorem 1 kernel on light-first
// layouts across curves.
func BenchmarkE3EnergyBound(b *testing.B) {
	t := tree.RandomBoundedDegree(benchN, 2, rng.New(3))
	for _, c := range []sfc.Curve{sfc.Hilbert{}, sfc.Moore{}, sfc.Peano{}} {
		b.Run(c.Name(), func(b *testing.B) {
			var per float64
			for i := 0; i < b.N; i++ {
				p := layout.LightFirst(t, c)
				per = layout.ParentChildEnergy(p).PerVertex
			}
			b.ReportMetric(per, "energy/vertex")
		})
	}
}

// BenchmarkE4ZOrder measures Theorem 2: the Z-order kernel and its
// diagonal split.
func BenchmarkE4ZOrder(b *testing.B) {
	t := tree.RandomBoundedDegree(benchN, 2, rng.New(4))
	var diagPer float64
	for i := 0; i < b.N; i++ {
		p := layout.LightFirst(t, sfc.ZOrder{})
		z := layout.MeasureZDiagnostics(p)
		diagPer = float64(z.Diagonal) / float64(t.N())
	}
	b.ReportMetric(diagPer, "diag-energy/vertex")
}

// BenchmarkE5VirtualTree measures Theorem 3: local broadcast over a
// star through the virtual tree.
func BenchmarkE5VirtualTree(b *testing.B) {
	t := tree.Star(benchN)
	vt := vtree.Build(t, eulertour.SortedChildrenBySize(t, t.SubtreeSizes()))
	rank := order.LightFirst(t).Rank
	vals := make([]int64, t.N())
	var depth int64
	for i := 0; i < b.N; i++ {
		s := machine.New(t.N(), sfc.Hilbert{})
		vtree.LocalBroadcast(s, vt, rank, vals)
		depth = s.Depth()
	}
	b.ReportMetric(float64(depth), "model-depth")
}

// BenchmarkE6ListRanking measures Theorem 5 (spatial) vs Wyllie (PRAM).
func BenchmarkE6ListRanking(b *testing.B) {
	r := rng.New(6)
	next := make([]int, benchN)
	perm := r.Perm(benchN)
	for i := 0; i+1 < benchN; i++ {
		next[perm[i]] = perm[i+1]
	}
	next[perm[benchN-1]] = -1
	b.Run("spatial", func(b *testing.B) {
		var energy int64
		for i := 0; i < b.N; i++ {
			s := machine.New(benchN, sfc.Hilbert{})
			listrank.Spatial(s, next, nil, rng.New(uint64(i)))
			energy = s.Energy()
		}
		b.ReportMetric(float64(energy)/float64(benchN), "energy/vertex")
	})
	b.Run("wyllie-pram", func(b *testing.B) {
		var energy int64
		for i := 0; i < b.N; i++ {
			s := machine.New(benchN, sfc.Hilbert{})
			listrank.Wyllie(s, next, nil)
			energy = s.Energy()
		}
		b.ReportMetric(float64(energy)/float64(benchN), "energy/vertex")
	})
}

// BenchmarkE7LayoutCreation measures Theorem 4: the full light-first
// layout construction pipeline.
func BenchmarkE7LayoutCreation(b *testing.B) {
	t := tree.RandomAttachment(benchN/2, rng.New(7))
	var energy, depth int64
	for i := 0; i < b.N; i++ {
		s := machine.New(t.N()*2, sfc.Hilbert{})
		eulertour.LightFirstLayout(s, t, rng.New(uint64(i)))
		energy, depth = s.Energy(), s.Depth()
	}
	b.ReportMetric(float64(energy), "model-energy")
	b.ReportMetric(float64(depth), "model-depth")
}

// BenchmarkE8Compact measures Lemma 10/11: contraction rounds.
func BenchmarkE8Compact(b *testing.B) {
	t := tree.RandomBoundedDegree(benchN, 2, rng.New(8))
	rank := order.LightFirst(t).Rank
	vals := make([]int64, t.N())
	var rounds int
	for i := 0; i < b.N; i++ {
		s := machine.New(t.N(), sfc.Hilbert{})
		_, st := treefix.BottomUp(s, t, rank, vals, treefix.Add, rng.New(uint64(i)))
		rounds = st.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE9Treefix measures Lemmas 11/12: the spatial treefix against
// the executable PRAM baseline.
func BenchmarkE9Treefix(b *testing.B) {
	t := tree.RandomBoundedDegree(benchN, 2, rng.New(9))
	rank := order.LightFirst(t).Rank
	vals := make([]int64, t.N())
	for i := range vals {
		vals[i] = int64(i)
	}
	b.Run("spatial", func(b *testing.B) {
		var energy, depth int64
		for i := 0; i < b.N; i++ {
			s := machine.New(t.N(), sfc.Hilbert{})
			treefix.BottomUp(s, t, rank, vals, treefix.Add, rng.New(uint64(i)))
			energy, depth = s.Energy(), s.Depth()
		}
		b.ReportMetric(float64(energy)/float64(t.N()), "energy/vertex")
		b.ReportMetric(float64(depth), "model-depth")
	})
	b.Run("pram-direct", func(b *testing.B) {
		var energy, depth int64
		for i := 0; i < b.N; i++ {
			s := machine.New(2*t.N(), sfc.Hilbert{})
			pram.TreefixDirect(s, t, vals)
			energy, depth = s.Energy(), s.Depth()
		}
		b.ReportMetric(float64(energy)/float64(t.N()), "energy/vertex")
		b.ReportMetric(float64(depth), "model-depth")
	})
}

// BenchmarkE10PathDecomp measures §VI-A: layers of the heavy-light
// decomposition (via the batched-LCA machinery).
func BenchmarkE10PathDecomp(b *testing.B) {
	t := tree.RandomAttachment(benchN, rng.New(10))
	rank := order.LightFirst(t).Rank
	qs := []lca.Query{{U: 0, V: t.N() - 1}}
	var layers int
	for i := 0; i < b.N; i++ {
		s := machine.New(t.N(), sfc.Hilbert{})
		_, st := lca.Batched(s, t, rank, qs, rng.New(uint64(i)))
		layers = st.Layers
	}
	b.ReportMetric(float64(layers), "layers")
}

// BenchmarkE11LCA measures Theorem 6: a full disjoint query batch.
func BenchmarkE11LCA(b *testing.B) {
	t := tree.RandomAttachment(benchN, rng.New(11))
	rank := order.LightFirst(t).Rank
	perm := rng.New(12).Perm(t.N())
	var qs []lca.Query
	for i := 0; i+1 < t.N(); i += 2 {
		qs = append(qs, lca.Query{U: perm[i], V: perm[i+1]})
	}
	var energy, depth int64
	for i := 0; i < b.N; i++ {
		s := machine.New(t.N(), sfc.Hilbert{})
		lca.Batched(s, t, rank, qs, rng.New(uint64(i)))
		energy, depth = s.Energy(), s.Depth()
	}
	b.ReportMetric(float64(energy)/float64(t.N()), "energy/vertex")
	b.ReportMetric(float64(depth), "model-depth")
}

// BenchmarkE12Parallel measures the goroutine executors' wall-clock
// scaling (treefix bottom-up sum; see also the LCA engine below).
func BenchmarkE12Parallel(b *testing.B) {
	t := tree.RandomAttachment(1<<20, rng.New(13))
	vals := make([]int64, t.N())
	for i := range vals {
		vals[i] = int64(i)
	}
	for _, w := range []int{1, 2, 4, par.Workers()} {
		b.Run("treefix-w"+itoa(w), func(b *testing.B) {
			e := treefix.NewEngine(t, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.BottomUpSum(vals)
			}
		})
	}
	qs := make([]lca.Query, 1<<17)
	qr := rng.New(14)
	for i := range qs {
		qs[i] = lca.Query{U: qr.Intn(t.N()), V: qr.Intn(t.N())}
	}
	for _, w := range []int{1, par.Workers()} {
		b.Run("lca-queries-w"+itoa(w), func(b *testing.B) {
			e := lca.NewEngine(t, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.BatchLCA(qs)
			}
		})
	}
}

// BenchmarkE13EngineThroughput measures PR 1's batched query engine
// against the naive per-call path on a repeated same-tree workload: 32
// batches (a 128-query LCA batch each, plus a treefix sum every 8th),
// all on one n=2^14 tree. The naive path rebuilds the light-first
// layout and runs a fresh simulator per call; the engine path gets its
// placement from the layout cache and coalesces the whole workload's
// LCA traffic into a single spatial run.
func BenchmarkE13EngineThroughput(b *testing.B) {
	t := tree.RandomAttachment(benchN, rng.New(30))
	const (
		batches      = 32
		queriesPer   = 128
		treefixEvery = 8
	)
	qr := rng.New(31)
	qsets := make([][]lca.Query, batches)
	totalQueries := 0
	for i := range qsets {
		qs := make([]lca.Query, queriesPer)
		for j := range qs {
			qs[j] = lca.Query{U: qr.Intn(t.N()), V: qr.Intn(t.N())}
		}
		qsets[i] = qs
		totalQueries += len(qs)
	}
	vals := make([]int64, t.N())
	for i := range vals {
		vals[i] = int64(i % 101)
	}

	b.Run("naive-percall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for bi := 0; bi < batches; bi++ {
				p := layout.LightFirst(t, sfc.Hilbert{})
				s := machine.New(t.N(), p.Curve)
				lca.Batched(s, t, p.Order.Rank, qsets[bi], rng.New(uint64(i)))
				if bi%treefixEvery == 0 {
					p = layout.LightFirst(t, sfc.Hilbert{})
					s = machine.New(t.N(), p.Curve)
					treefix.BottomUp(s, t, p.Order.Rank, vals, treefix.Add, rng.New(uint64(i)))
				}
			}
		}
		b.ReportMetric(float64(totalQueries*b.N)/b.Elapsed().Seconds(), "queries/s")
	})

	b.Run("engine-batched", func(b *testing.B) {
		cache := engine.NewLayoutCache(4)
		if _, err := engine.New(t, engine.Options{Cache: cache}); err != nil {
			b.Fatal(err) // warm the cache outside the timer
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng, err := engine.New(t, engine.Options{
				Cache:  cache,
				Window: batches + batches/treefixEvery + 1,
				Seed:   uint64(i),
			})
			if err != nil {
				b.Fatal(err)
			}
			futs := make([]*engine.Future, 0, batches+batches/treefixEvery)
			for bi := 0; bi < batches; bi++ {
				futs = append(futs, eng.SubmitLCA(qsets[bi]))
				if bi%treefixEvery == 0 {
					futs = append(futs, eng.SubmitTreefix(vals, treefix.Add))
				}
			}
			eng.Flush()
			for _, f := range futs {
				if res := f.Wait(); res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(totalQueries*b.N)/b.Elapsed().Seconds(), "queries/s")
		b.ReportMetric(100*cache.Stats().HitRate(), "cache-hit-%")
	})
}

// churnMutation applies step m of the deterministic churn schedule:
// two inserts (under a random original vertex) per delete (of the
// youngest inserted leaf — never an original id, so query ids stay
// valid; see dynlayout.DeleteYoungestLeaf).
func churnMutation(b *testing.B, mt dynlayout.MutTree, r *rng.RNG, m, origN int) {
	if m%3 == 2 {
		ok, err := dynlayout.DeleteYoungestLeaf(mt, origN)
		if err != nil {
			b.Fatal(err)
		}
		if ok {
			return
		}
	}
	if _, err := mt.InsertLeaf(r.Intn(origN)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkE14DynChurn measures the PR 2 mutable serving path against
// naive rebuild-per-mutation at n=2^14 with 5% churn: benchN/20
// mutations, an LCA batch every 64 of them. The same deterministic
// schedule drives both arms; they differ only in how serving state is
// maintained. The naive arm does what a static-engine deployment must:
// after every mutation, revalidate the tree and rebuild the light-first
// layout from scratch. The dynamic arm applies O(1) parked mutations
// and refreshes its serving state lazily, once per query round — the
// acceptance target is ≥2× on wall clock.
func BenchmarkE14DynChurn(b *testing.B) {
	const (
		mutations  = benchN / 20 // 5% churn
		queryEvery = 64
		queriesPer = 16
	)
	base := tree.RandomAttachment(benchN, rng.New(50))
	querySets := make([][]lca.Query, 0, mutations/queryEvery+1)
	qr := rng.New(51)
	for m := 0; m < mutations; m += queryEvery {
		qs := make([]lca.Query, queriesPer)
		for i := range qs {
			qs[i] = lca.Query{U: qr.Intn(benchN), V: qr.Intn(benchN)}
		}
		querySets = append(querySets, qs)
	}

	b.Run("naive-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := dynlayout.New(base, sfc.Hilbert{}, 0.2)
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(52)
			for m := 0; m < mutations; m++ {
				churnMutation(b, d, r, m, benchN)
				t, err := d.Tree()
				if err != nil {
					b.Fatal(err)
				}
				p := layout.LightFirst(t, sfc.Hilbert{}) // rebuild per mutation
				if m%queryEvery == 0 {
					s := machine.New(t.N(), p.Curve)
					lca.Batched(s, t, p.Order.Rank, querySets[m/queryEvery], rng.New(uint64(i)))
				}
			}
		}
		b.ReportMetric(float64(mutations*b.N)/b.Elapsed().Seconds(), "mutations/s")
	})

	b.Run("dyn-engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			de, err := engine.NewDyn(base, engine.DynOptions{
				Options: engine.Options{Seed: uint64(i), Window: 64},
				Epsilon: 0.2,
			})
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(52)
			for m := 0; m < mutations; m++ {
				churnMutation(b, de, r, m, benchN)
				if m%queryEvery == 0 {
					if res := de.SubmitLCA(querySets[m/queryEvery]).Wait(); res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
			if i == b.N-1 {
				st := de.Stats()
				b.ReportMetric(float64(st.Refreshes), "refreshes")
				b.ReportMetric(float64(st.Rebuilds), "layout-rebuilds")
			}
		}
		b.ReportMetric(float64(mutations*b.N)/b.Elapsed().Seconds(), "mutations/s")
	})
}

// BenchmarkE16NativeBackend measures the execution-backend layer on an
// E13-style batched treefix workload at n=2^14: 16 coalesced treefix
// requests (bottom-up and top-down, operators cycling through the
// registry so every native dispatch path is on the clock) per
// iteration, identical on both arms. The sim arm is the engine's
// historical serving path — every batch through the spatial-computer
// simulator with per-message accounting; the native arm runs the same
// batches on the goroutine-parallel kernels. The acceptance target is
// native ≥ 5× sim; in practice the gap is well over an order of
// magnitude, which is the whole argument for demoting the simulator to
// a metering/validation backend.
func BenchmarkE16NativeBackend(b *testing.B) {
	t := tree.RandomAttachment(benchN, rng.New(80))
	const reqs = 16
	ops := []treefix.Op{treefix.Add, treefix.Max, treefix.Min, treefix.Xor}
	vals := make([]int64, t.N())
	for i := range vals {
		vals[i] = int64(i%1013) - 500
	}
	for _, backend := range []string{"sim", "native"} {
		b.Run(backend+"-backend", func(b *testing.B) {
			cache := engine.NewLayoutCache(4)
			if _, err := engine.New(t, engine.Options{Cache: cache}); err != nil {
				b.Fatal(err) // warm the cache outside the timer
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := engine.New(t, engine.Options{
					Backend: backend,
					Cache:   cache,
					Window:  reqs + 1,
					Seed:    uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				futs := make([]*engine.Future, 0, reqs)
				for r := 0; r < reqs; r++ {
					if r%2 == 0 {
						futs = append(futs, eng.SubmitTreefix(vals, ops[r%len(ops)]))
					} else {
						futs = append(futs, eng.SubmitTopDown(vals, ops[r%len(ops)]))
					}
				}
				eng.Flush()
				for _, f := range futs {
					if res := f.Wait(); res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(reqs*b.N)/b.Elapsed().Seconds(), "treefix/s")
		})
	}
}

// BenchmarkE17WireThroughput measures the serving protocols end to end
// over loopback: identical treefix traffic — concurrent clients, each
// issuing sequential queries against the same registered shard — once
// through the HTTP/JSON API and once through the length-prefixed
// binary protocol (internal/wire, docs/protocol.md). The arms share
// the server configuration and differ only in transport and encoding,
// so the queries/s gap is pure protocol overhead; with -benchmem the
// allocs/op gap shows the zero-alloc discipline of the binary hot
// path (pooled frame buffers, connection-local decode state) against
// per-request JSON marshalling. Acceptance: binary ≥ 2× JSON on
// queries/s and ≤ half its allocs/op.
func BenchmarkE17WireThroughput(b *testing.B) {
	const (
		wireN   = 1 << 10
		clients = 16
		perIter = 48 // sequential queries per client per op (big enough to average out scheduler jitter)
	)
	t := tree.RandomAttachment(wireN, rng.New(90))
	vals := make([]int64, t.N())
	for i := range vals {
		vals[i] = int64(i%1013) - 500
	}
	// MaxBatch 1 dispatches every query the moment it arrives: the
	// protocols' queries/s then measure transport + encoding + kernel
	// with no batch-deadline stalls in the loop. (Coalescing throughput
	// is E13's experiment; here it would only add scheduler jitter to a
	// transport comparison.)
	newServer := func(b *testing.B) (*server.Server, string) {
		b.Helper()
		s := server.New(server.Config{
			Scheduler: server.Scheduler{MaxBatch: 1, MaxDelay: time.Millisecond},
			Limits:    server.Limits{QueueLimit: 4096},
		})
		id, err := s.RegisterTree(t)
		if err != nil {
			b.Fatal(err)
		}
		return s, id
	}
	reportQPS := func(b *testing.B) {
		b.ReportMetric(float64(clients*perIter*b.N)/b.Elapsed().Seconds(), "queries/s")
	}

	b.Run("json-http", func(b *testing.B) {
		s, id := newServer(b)
		hs := httptest.NewServer(s.Handler())
		defer hs.Close()
		body, err := json.Marshal(server.QueryRequest{TreeID: id, Kind: "treefix", Vals: vals})
		if err != nil {
			b.Fatal(err)
		}
		var failed atomic.Value
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := 0; r < perIter; r++ {
						resp, err := http.Post(hs.URL+"/v1/query", "application/json", bytes.NewReader(body))
						if err != nil {
							failed.Store(err)
							return
						}
						var qr server.QueryResponse
						err = json.NewDecoder(resp.Body).Decode(&qr)
						resp.Body.Close()
						if err != nil || len(qr.Sums) != wireN {
							failed.Store(fmt.Errorf("bad response (err=%v, %d sums)", err, len(qr.Sums)))
							return
						}
					}
				}()
			}
			wg.Wait()
		}
		b.StopTimer()
		if err := failed.Load(); err != nil {
			b.Fatal(err)
		}
		reportQPS(b)
	})

	b.Run("binary-tcp", func(b *testing.B) {
		s, id := newServer(b)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go func() { _ = s.ServeBinary(ln) }()
		defer s.CloseBinary()
		conns := make([]*wire.Client, clients)
		for c := range conns {
			cl, err := wire.Dial(ln.Addr().String(), wire.DialOptions{DialTimeout: 5 * time.Second})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			conns[c] = cl
		}
		var failed atomic.Value
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(cl *wire.Client) {
					defer wg.Done()
					q := wire.Query{Kind: wire.KindTreefix, TreeID: id, Vals: vals}
					for r := 0; r < perIter; r++ {
						res, err := cl.Do(&q)
						if err != nil {
							failed.Store(err)
							return
						}
						if len(res.Sums) != wireN {
							failed.Store(fmt.Errorf("bad response: %d sums", len(res.Sums)))
							return
						}
					}
				}(conns[c])
			}
			wg.Wait()
		}
		b.StopTimer()
		if err := failed.Load(); err != nil {
			b.Fatal(err)
		}
		reportQPS(b)
	})
}

// BenchmarkExprEval measures the §V-cited application: Miller-Reif
// expression evaluation by rake contraction on the simulator.
func BenchmarkExprEval(b *testing.B) {
	e := exprtree.Random(benchN/2, rng.New(21))
	rank := order.LightFirst(e.Tree).Rank
	var rounds int
	for i := 0; i < b.N; i++ {
		s := machine.New(e.Tree.N(), sfc.Hilbert{})
		_, st := exprtree.EvalSpatial(s, e, rank)
		rounds = st.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkMinCut measures the Karger 1-respecting-cut application:
// one batched LCA plus two treefix sums.
func BenchmarkMinCut(b *testing.B) {
	r := rng.New(22)
	t := tree.RandomAttachment(benchN, r)
	edges := mincut.RandomGraph(t, benchN/2, 10, r)
	rank := order.LightFirst(t).Rank
	var energy int64
	for i := 0; i < b.N; i++ {
		s := machine.New(t.N(), sfc.Hilbert{})
		if _, err := mincut.OneRespecting(s, t, rank, edges, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
		energy = s.Energy()
	}
	b.ReportMetric(float64(energy)/float64(t.N()), "energy/vertex")
}

// BenchmarkAblationOrders measures the messaging kernel per vertex order
// (the DESIGN.md ablation: the layout supplies the bound, not the code).
func BenchmarkAblationOrders(b *testing.B) {
	t := tree.RandomBoundedDegree(benchN, 2, rng.New(23))
	for _, name := range order.Names() {
		b.Run(name, func(b *testing.B) {
			o, _ := order.ByName(name, t, rng.New(1))
			var per float64
			for i := 0; i < b.N; i++ {
				p := layout.New(t, o, sfc.Hilbert{})
				per = layout.ParentChildEnergy(p).PerVertex
			}
			b.ReportMetric(per, "energy/vertex")
		})
	}
}

// BenchmarkDynamicInserts measures the §VII future-work extension:
// leaf insertions into a dynamically maintained layout, including
// amortized rebuilds.
func BenchmarkDynamicInserts(b *testing.B) {
	r := rng.New(24)
	t := tree.RandomAttachment(1<<12, r)
	d, err := dynlayout.New(t, sfc.Hilbert{}, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.InsertLeaf(r.Intn(d.N())); err != nil {
			b.Fatal(err)
		}
	}
	fresh, err := d.FreshKernelCost()
	if err != nil {
		b.Fatal(err)
	}
	ratio := float64(d.KernelCost().Energy) / float64(fresh.Energy)
	b.ReportMetric(ratio, "kernel-vs-fresh")
	b.ReportMetric(float64(d.Rebuilds), "rebuilds")
}

// BenchmarkSequentialBaselines provides the host-oracle costs for
// context (not a paper experiment).
func BenchmarkSequentialBaselines(b *testing.B) {
	t := tree.RandomAttachment(1<<20, rng.New(15))
	vals := make([]int64, t.N())
	b.Run("treefix-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			treefix.SequentialBottomUp(t, vals, treefix.Add)
		}
	})
	b.Run("lca-oracle-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lca.NewOracle(t)
		}
	})
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// e15Mutate applies the deterministic E15 churn schedule to a mutable
// shard: three inserts per delete of the youngest inserted leaf.
func e15Mutate(b *testing.B, de *engine.DynEngine, n, mutations int) {
	b.Helper()
	var last int
	for i := 0; i < mutations; i++ {
		if i%4 == 3 {
			if _, err := de.DeleteLeaf(last); err != nil {
				b.Fatal(err)
			}
			continue
		}
		v, err := de.InsertLeaf(i % n)
		if err != nil {
			b.Fatal(err)
		}
		last = v
	}
}

// e15DynSnapshot converts an engine state capture into the store's
// snapshot form (the conversion internal/server performs when it
// creates a shard log).
func e15DynSnapshot(st engine.DynState) persist.DynSnapshot {
	return persist.DynSnapshot{
		Parents: st.Parents, Curve: st.Curve, Side: st.Side, Ranks: st.Ranks,
		Epsilon: st.Epsilon, Epoch: st.Epoch, Drift: st.Drift,
		Inserts: st.Inserts, Deletes: st.Deletes, Rebuilds: st.Rebuilds,
		ParkEnergy: st.ParkEnergy, MigrateEnergy: st.MigrateEnergy,
	}
}

// BenchmarkE15Recovery measures the durability subsystem's warm-start
// against what a store-less deployment must redo after a restart. The
// fixture is a serving state of 4 registered trees (n=2^14 each) plus
// one mutable shard (n=2048) that took 400 journaled mutations. The
// warm arm opens the data dir and runs the full snapshot+WAL recovery:
// placements come back through the seeded layout cache (no light-first
// pipeline runs) and the dyn shard replays only its WAL. The cold arm
// rebuilds the same state from scratch: one light-first pipeline per
// registered tree, a fresh dynamic layout, and a full re-application of
// the mutation history — which a real store-less restart could not even
// do, because the mutation history dies with the process. Both arms pay
// the same per-vertex curve-coordinate cost (the placement must exist
// either way), so the warm arm's edge is the skipped pipeline work —
// ~1.3× on wall clock — and the gate's job is to keep recovery from
// regressing into costing more than the rebuild it replaces.
func BenchmarkE15Recovery(b *testing.B) {
	const (
		regTrees  = 4
		regN      = 16384
		dynN      = 2048
		mutations = 400
	)
	trees := make([]*tree.Tree, regTrees)
	for i := range trees {
		trees[i] = tree.RandomAttachment(regN, rng.New(uint64(60+i)))
	}
	dynBase := tree.RandomAttachment(dynN, rng.New(70))

	// Build the durable fixture once.
	dir := b.TempDir()
	store, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	seed := server.New(server.Config{Durability: server.Durability{Store: store}})
	for _, tr := range trees {
		if _, err := seed.RegisterTree(tr); err != nil {
			b.Fatal(err)
		}
	}
	de, err := seed.Pool().NewDynShard(dynBase, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	shardLog, err := store.CreateShardLog("d1", e15DynSnapshot(de.State()))
	if err != nil {
		b.Fatal(err)
	}
	de.SetJournal(func(rec engine.MutationRecord) error {
		pr := persist.Record{Epoch: rec.Epoch, Arg: rec.Arg, Result: rec.Result, Type: persist.RecInsert}
		if rec.Op == engine.MutDelete {
			pr.Type = persist.RecDelete
		}
		return shardLog.Append(pr)
	})
	e15Mutate(b, de, dynN, mutations)
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("warm-start", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := persist.Open(persist.Options{Dir: dir})
			if err != nil {
				b.Fatal(err)
			}
			srv := server.New(server.Config{Durability: server.Durability{Store: st}})
			rs, err := srv.Recover()
			if err != nil {
				b.Fatal(err)
			}
			if rs.Trees != regTrees || rs.DynShards != 1 || rs.Records != mutations {
				b.Fatalf("recovery incomplete: %+v", rs)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(mutations), "replayed-records")
	})

	b.Run("cold-restart", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			srv := server.New(server.Config{})
			for _, tr := range trees {
				if _, err := srv.RegisterTree(tr); err != nil {
					b.Fatal(err)
				}
			}
			de, err := srv.Pool().NewDynShard(dynBase, 0.2)
			if err != nil {
				b.Fatal(err)
			}
			e15Mutate(b, de, dynN, mutations)
		}
	})
}

// BenchmarkE18SelfTune gates the self-tuning loop (internal/tune): a
// sim-backend mutable shard seeded on the known-bad scatter curve
// serves a skewed, LCA-heavy workload on a deep tree. The untuned arm
// stays where it was seeded; the tuned arm lets the online tuner
// profile the workload and republish through the shard's epoch
// machinery — first onto a distance-bound curve (a model-energy win,
// verified against the shard's own shadow-metered samples), then, once
// that win is confirmed, off the simulator onto the native backend (a
// wall-clock win). Both stages run to convergence before the timed
// section. The claim under gate: tuned steady-state throughput is at
// least 1.3x the untuned arm — the tuner must recover, online and from
// sampled cost alone, what a human operator would have configured.
func BenchmarkE18SelfTune(b *testing.B) {
	const (
		tuneN      = 1 << 11
		queriesPer = 256
		batchesPer = 4
	)
	deep := tree.Path(tuneN)
	qr := rng.New(95)
	qsets := make([][]lca.Query, 8)
	for i := range qsets {
		qs := make([]lca.Query, queriesPer)
		for j := range qs {
			qs[j] = lca.Query{U: qr.Intn(tuneN), V: qr.Intn(tuneN)}
		}
		qsets[i] = qs
	}
	newShard := func(b *testing.B) *engine.DynEngine {
		de, err := engine.NewDyn(deep, engine.DynOptions{
			Options: engine.Options{Curve: "scatter", Backend: exec.Sim, Window: 1},
			Epsilon: 0.2,
		})
		if err != nil {
			b.Fatal(err)
		}
		return de
	}
	serve := func(b *testing.B, de *engine.DynEngine, rounds int) int {
		total := 0
		for r := 0; r < rounds; r++ {
			for bi := 0; bi < batchesPer; bi++ {
				if res := de.SubmitLCA(qsets[(r*batchesPer+bi)%len(qsets)]).Wait(); res.Err != nil {
					b.Fatal(res.Err)
				}
				total += queriesPer
			}
		}
		return total
	}

	b.Run("untuned", func(b *testing.B) {
		de := newShard(b)
		serve(b, de, 2) // same warm-up as the tuned arm, minus the tuner
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			total += serve(b, de, 1)
		}
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "queries/s")
	})

	b.Run("tuned", func(b *testing.B) {
		de := newShard(b)
		tu := tune.New(tune.Config{MinSamples: 4, Backends: true})
		tu.Adopt("e18", de)
		// Convergence phase, untimed: profile real batches and tick until
		// the tuner has republished the curve, confirmed the realized
		// energy win, and switched the shard off the simulator. Each serve
		// round feeds MinSamples batches, so every tick can make progress.
		for round := 0; round < 16 && exec.Normalize(de.LayoutConfig().Backend) != exec.Native; round++ {
			serve(b, de, 1)
			tu.Tick()
		}
		if de.Stats().Retunes == 0 {
			b.Fatal("tuner never republished the scatter-seeded shard")
		}
		if got := exec.Normalize(de.LayoutConfig().Backend); got != exec.Native {
			b.Fatalf("tuner never converged to the native backend (still %q after retunes)", got)
		}
		serve(b, de, 1) // settle onto the tuned layout
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			total += serve(b, de, 1)
		}
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "queries/s")
		b.StopTimer()
		tu.Release("e18")
	})
}
